//! A disk-based B-tree over the buffer cache.
//!
//! This is the `Vertex` relation's default access method (§5.2): "A B-tree
//! index performs well on jobs that frequently update vertex data in-place,
//! e.g., PageRank." Keys are arbitrary byte strings compared as memcmp
//! (Pregelix uses 8-byte big-endian vids); values are arbitrary bytes, with
//! values too large to inline (high-degree vertices) transparently spilled
//! to chained overflow pages.
//!
//! Supported operations: [`BTree::bulk_load`] (the initial graph load and
//! checkpoint recovery path), point [`BTree::search`], ordered full scans
//! ([`BTree::scan`]) used by the index full-outer join, point probes used by
//! the index left-outer join, and [`BTree::insert`] / [`BTree::update`] /
//! [`BTree::delete`] used by in-place vertex updates and graph mutations.
//!
//! Deletion does not rebalance (underfull pages persist until the next bulk
//! rebuild); graph-mutation-heavy workloads are steered to the LSM B-tree
//! instead, exactly as §5.2 advises.

use crate::cache::BufferCache;
use crate::file::{FileId, PageId};
use crate::page::{PageMut, PageRef, PageType, HEADER_LEN, NO_PAGE};
use pregelix_common::error::{PregelixError, Result};
use pregelix_common::fault::{self, Site};

/// Value-encoding tags used inside leaf entries.
const TAG_INLINE: u8 = 0;
const TAG_OVERFLOW: u8 = 1;

/// Meta-page magic for corruption detection on open.
const META_MAGIC: u64 = 0x5052_4547_4C58_4254; // "PREGLXBT"

/// A B-tree bound to one file of a worker's buffer cache.
pub struct BTree {
    cache: BufferCache,
    file: FileId,
    root: PageId,
    height: u8,
    /// Recycled overflow pages (in-memory only; see module docs).
    free_overflow: Vec<PageId>,
    /// First page of the sidecar blob chain ([`NO_PAGE`] when absent).
    sidecar_head: PageId,
    /// Byte length of the sidecar blob.
    sidecar_len: u64,
}

impl BTree {
    /// Create a fresh, empty tree in a new file.
    pub fn create(cache: BufferCache) -> Result<BTree> {
        let file = cache.file_manager().create()?;
        Self::create_in(cache, file)
    }

    /// Re-initialise an existing file as a fresh, empty tree, reusing the
    /// file id and disk space. Any cached pages of the file are discarded.
    /// This is the cheap path for indexes rebuilt every superstep (`Vid`).
    pub fn recreate(self) -> Result<BTree> {
        let cache = self.cache.clone();
        let file = self.file;
        cache.purge_file(file, false)?;
        cache.file_manager().truncate(file)?;
        Self::create_in(cache, file)
    }

    fn create_in(cache: BufferCache, file: FileId) -> Result<BTree> {
        // Page 0: meta. Page 1: empty leaf root.
        let (meta_id, meta) = cache.new_page(file)?;
        debug_assert_eq!(meta_id, 0);
        let (root_id, root) = cache.new_page(file)?;
        {
            let mut buf = root.write();
            PageMut::init(&mut buf, PageType::Leaf, 0);
        }
        drop(root);
        let tree = BTree {
            cache,
            file,
            root: root_id,
            height: 1,
            free_overflow: Vec::new(),
            sidecar_head: NO_PAGE,
            sidecar_len: 0,
        };
        {
            let mut buf = meta.write();
            tree.write_meta(&mut buf);
        }
        drop(meta);
        Ok(tree)
    }

    /// Re-open a tree persisted in `file` (used by checkpoint recovery and
    /// LSM disk components).
    pub fn open(cache: BufferCache, file: FileId) -> Result<BTree> {
        let meta = cache.pin(file, 0)?;
        let buf = meta.read();
        if buf.len() < 33 || u64::from_le_bytes(buf[0..8].try_into().expect("8")) != META_MAGIC {
            return Err(PregelixError::corrupt("bad B-tree meta page"));
        }
        let root = u64::from_le_bytes(buf[8..16].try_into().expect("8"));
        let height = buf[16];
        let sidecar_head = u64::from_le_bytes(buf[17..25].try_into().expect("8"));
        let sidecar_len = u64::from_le_bytes(buf[25..33].try_into().expect("8"));
        drop(buf);
        Ok(BTree {
            cache,
            file,
            root,
            height,
            free_overflow: Vec::new(),
            sidecar_head,
            sidecar_len,
        })
    }

    /// Meta-page layout: magic (0..8), root (8..16), height (16),
    /// sidecar head page (17..25), sidecar byte length (25..33).
    fn write_meta(&self, buf: &mut [u8]) {
        buf[0..8].copy_from_slice(&META_MAGIC.to_le_bytes());
        buf[8..16].copy_from_slice(&self.root.to_le_bytes());
        buf[16] = self.height;
        buf[17..25].copy_from_slice(&self.sidecar_head.to_le_bytes());
        buf[25..33].copy_from_slice(&self.sidecar_len.to_le_bytes());
    }

    fn sync_meta(&self) -> Result<()> {
        let meta = self.cache.pin(self.file, 0)?;
        let mut buf = meta.write();
        self.write_meta(&mut buf);
        Ok(())
    }

    /// The file holding this tree.
    pub fn file(&self) -> FileId {
        self.file
    }

    /// The buffer cache this tree reads through.
    pub fn cache(&self) -> &BufferCache {
        &self.cache
    }

    /// Tree height (1 = root is a leaf).
    pub fn height(&self) -> u8 {
        self.height
    }

    /// Write back all dirty pages (meta included) so [`BTree::open`] sees
    /// the current state after a cache purge or process restart.
    pub fn flush(&self) -> Result<()> {
        self.sync_meta()?;
        self.cache.flush_file(self.file)
    }

    /// Delete the backing file (consumes the tree).
    pub fn destroy(self) -> Result<()> {
        self.cache.purge_file(self.file, false)?;
        self.cache.file_manager().delete(self.file)
    }

    // ------------------------------------------------------------------
    // Value encoding: inline vs overflow
    // ------------------------------------------------------------------

    /// Largest encoded leaf entry we inline: a leaf page must always be able
    /// to hold at least 4 entries.
    fn max_inline_entry(&self) -> usize {
        (self.cache.page_size() - HEADER_LEN) / 4 - 2
    }

    fn overflow_chunk_capacity(&self) -> usize {
        self.cache.page_size() - HEADER_LEN
    }

    fn alloc_overflow_page(&mut self) -> Result<PageId> {
        if let Some(p) = self.free_overflow.pop() {
            return Ok(p);
        }
        let (pid, guard) = self.cache.new_page(self.file)?;
        drop(guard);
        Ok(pid)
    }

    /// Write `bytes` into a chain of overflow pages (last chunk first so
    /// each page can point at the next) and return the head page.
    fn write_overflow_chain(&mut self, bytes: &[u8]) -> Result<PageId> {
        let cap = self.overflow_chunk_capacity();
        let mut next = NO_PAGE;
        let mut start = (bytes.len() / cap) * cap;
        if start == bytes.len() && start > 0 {
            start -= cap;
        }
        loop {
            let chunk = &bytes[start..(start + cap).min(bytes.len())];
            let pid = self.alloc_overflow_page()?;
            let guard = self.cache.pin(self.file, pid)?;
            {
                let mut buf = guard.write();
                let mut p = PageMut::init(&mut buf, PageType::Overflow, 0);
                p.set_next_page(next);
                // Chunk length in header bytes 8..12; data from HEADER_LEN.
                buf[8..12].copy_from_slice(&(chunk.len() as u32).to_le_bytes());
                buf[HEADER_LEN..HEADER_LEN + chunk.len()].copy_from_slice(chunk);
            }
            next = pid;
            if start == 0 {
                break;
            }
            start -= cap;
        }
        Ok(next)
    }

    /// Read back an overflow chain written by [`BTree::write_overflow_chain`].
    fn read_overflow_chain(&self, head: PageId, total: usize) -> Result<Vec<u8>> {
        let mut page = head;
        let mut out = Vec::with_capacity(total);
        while page != NO_PAGE {
            let guard = self.cache.pin(self.file, page)?;
            let buf = guard.read();
            let r = PageRef::new(&buf);
            if r.page_type()? != PageType::Overflow {
                return Err(PregelixError::corrupt("overflow chain hit non-overflow page"));
            }
            let len = u32::from_le_bytes(buf[8..12].try_into().expect("4")) as usize;
            out.extend_from_slice(&buf[HEADER_LEN..HEADER_LEN + len]);
            page = r.next_page();
        }
        if out.len() != total {
            return Err(PregelixError::corrupt(format!(
                "overflow chain length {} != recorded {total}",
                out.len()
            )));
        }
        Ok(out)
    }

    /// Recycle an overflow chain's pages into the free list.
    fn free_overflow_chain(&mut self, head: PageId) -> Result<()> {
        let mut page = head;
        while page != NO_PAGE {
            let guard = self.cache.pin(self.file, page)?;
            let next = {
                let buf = guard.read();
                PageRef::new(&buf).next_page()
            };
            self.free_overflow.push(page);
            page = next;
        }
        Ok(())
    }

    /// Encode `value` for storage in a leaf: inline when small, otherwise
    /// spilled to an overflow chain.
    fn encode_value(&mut self, key_len: usize, value: &[u8]) -> Result<Vec<u8>> {
        let inline_entry = PageMut::entry_size(key_len, 1 + value.len());
        if inline_entry <= self.max_inline_entry() {
            let mut out = Vec::with_capacity(1 + value.len());
            out.push(TAG_INLINE);
            out.extend_from_slice(value);
            return Ok(out);
        }
        let head = self.write_overflow_chain(value)?;
        let mut out = Vec::with_capacity(17);
        out.push(TAG_OVERFLOW);
        out.extend_from_slice(&(value.len() as u64).to_le_bytes());
        out.extend_from_slice(&head.to_le_bytes());
        Ok(out)
    }

    /// Decode a stored leaf value, following overflow chains.
    fn decode_value(&self, stored: &[u8]) -> Result<Vec<u8>> {
        match stored.first() {
            Some(&TAG_INLINE) => Ok(stored[1..].to_vec()),
            Some(&TAG_OVERFLOW) => {
                if stored.len() != 17 {
                    return Err(PregelixError::corrupt("bad overflow pointer"));
                }
                let total = u64::from_le_bytes(stored[1..9].try_into().expect("8")) as usize;
                let page = u64::from_le_bytes(stored[9..17].try_into().expect("8"));
                self.read_overflow_chain(page, total)
            }
            _ => Err(PregelixError::corrupt("empty leaf value")),
        }
    }

    /// Recycle the overflow chain behind a stored value (if any).
    fn free_value(&mut self, stored: &[u8]) -> Result<()> {
        if stored.first() == Some(&TAG_OVERFLOW) && stored.len() == 17 {
            let page = u64::from_le_bytes(stored[9..17].try_into().expect("8"));
            self.free_overflow_chain(page)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Sidecar blob
    // ------------------------------------------------------------------

    /// Attach an opaque blob to the tree's file, recorded on the meta page
    /// and stored in a chain of overflow pages. Used by LSM disk components
    /// to persist their bloom filter next to the data it describes, so a
    /// component is always a single self-contained file. Replaces any
    /// previous sidecar (its pages are recycled); an empty blob clears it.
    pub fn write_sidecar(&mut self, bytes: &[u8]) -> Result<()> {
        let old = self.sidecar_head;
        self.free_overflow_chain(old)?;
        if bytes.is_empty() {
            self.sidecar_head = NO_PAGE;
            self.sidecar_len = 0;
        } else {
            self.sidecar_head = self.write_overflow_chain(bytes)?;
            self.sidecar_len = bytes.len() as u64;
        }
        self.sync_meta()
    }

    /// Read back the sidecar blob, or `None` when the tree has none.
    pub fn read_sidecar(&self) -> Result<Option<Vec<u8>>> {
        if self.sidecar_head == NO_PAGE {
            return Ok(None);
        }
        Ok(Some(
            self.read_overflow_chain(self.sidecar_head, self.sidecar_len as usize)?,
        ))
    }

    // ------------------------------------------------------------------
    // Search and scan
    // ------------------------------------------------------------------

    /// Descend to the leaf that would contain `key`.
    fn find_leaf(&self, key: &[u8]) -> Result<PageId> {
        let mut page = self.root;
        loop {
            let guard = self.cache.pin(self.file, page)?;
            let buf = guard.read();
            let r = PageRef::new(&buf);
            match r.page_type()? {
                PageType::Leaf => return Ok(page),
                PageType::Interior => {
                    let idx = match r.search(key) {
                        Ok(i) => i,
                        Err(0) => 0,
                        Err(i) => i - 1,
                    };
                    let child = u64::from_le_bytes(r.value(idx).try_into().map_err(|_| {
                        PregelixError::corrupt("interior value is not a child pointer")
                    })?);
                    drop(buf);
                    page = child;
                }
                t => return Err(PregelixError::corrupt(format!("unexpected page type {t:?}"))),
            }
        }
    }

    /// Point lookup: the value stored under `key`, if present.
    pub fn search(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        if fault::active() && fault::hit(Site::BtreeOp, "search").is_some() {
            self.cache.counters().add_faults_injected(1);
            return Err(fault::injected_error(Site::BtreeOp, "search"));
        }
        let leaf = self.find_leaf(key)?;
        let guard = self.cache.pin(self.file, leaf)?;
        let buf = guard.read();
        let r = PageRef::new(&buf);
        match r.search(key) {
            Ok(i) => {
                let stored = r.value(i).to_vec();
                drop(buf);
                drop(guard);
                Ok(Some(self.decode_value(&stored)?))
            }
            Err(_) => Ok(None),
        }
    }

    /// Whether `key` is present. Presence is decided entirely from the leaf
    /// entry: the key and the value (or, for spilled values, the 17-byte
    /// overflow pointer) both live inline in the leaf, so overflow chains
    /// are never touched and a key whose value spilled is still reported
    /// present. Shares the sorted-probe access path ([`ProbeCursor`]) as a
    /// one-shot probe; callers checking many ascending keys should hold a
    /// [`BTree::probe_cursor`] instead to amortise the descent.
    pub fn contains(&self, key: &[u8]) -> Result<bool> {
        self.probe_cursor().probe_contains(key)
    }

    /// Sorted-probe cursor over this tree — the left-outer join's point
    /// access path. Keys must be probed in non-decreasing order.
    pub fn probe_cursor(&self) -> ProbeCursor<'_> {
        ProbeCursor::new(self)
    }

    /// Ordered scan over the whole tree.
    pub fn scan(&self) -> Result<BTreeScanner<'_>> {
        // Leftmost leaf: descend always taking child 0.
        let mut page = self.root;
        loop {
            let guard = self.cache.pin(self.file, page)?;
            let buf = guard.read();
            let r = PageRef::new(&buf);
            match r.page_type()? {
                PageType::Leaf => break,
                PageType::Interior => {
                    let child =
                        u64::from_le_bytes(r.value(0).try_into().expect("child pointer"));
                    drop(buf);
                    page = child;
                }
                t => return Err(PregelixError::corrupt(format!("unexpected page type {t:?}"))),
            }
        }
        BTreeScanner::start(self, page, None)
    }

    /// Ordered scan starting at the first key `>= from`.
    pub fn scan_from(&self, from: &[u8]) -> Result<BTreeScanner<'_>> {
        let leaf = self.find_leaf(from)?;
        BTreeScanner::start(self, leaf, Some(from.to_vec()))
    }

    /// Total number of live entries (walks every leaf).
    pub fn count(&self) -> Result<u64> {
        let mut n = 0u64;
        let mut scan = self.scan()?;
        while scan.next_entry()?.is_some() {
            n += 1;
        }
        Ok(n)
    }

    // ------------------------------------------------------------------
    // Mutation
    // ------------------------------------------------------------------

    /// Insert a new key. Fails with a storage error if the key exists (use
    /// [`BTree::upsert`] for replace-or-insert semantics).
    pub fn insert(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        if fault::active() && fault::hit(Site::BtreeOp, "insert").is_some() {
            self.cache.counters().add_faults_injected(1);
            return Err(fault::injected_error(Site::BtreeOp, "insert"));
        }
        if key.len() + 8 > self.max_inline_entry() {
            return Err(PregelixError::storage("key too large for page"));
        }
        let stored = self.encode_value(key.len(), value)?;
        if let Some((sep, right)) = self.insert_rec(self.root, key, &stored, false)? {
            self.grow_root(sep, right)?;
        }
        Ok(())
    }

    /// Insert or replace.
    pub fn upsert(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        if self.update(key, value)? {
            return Ok(());
        }
        self.insert(key, value)
    }

    /// Replace the value of an existing key. Returns `false` when absent.
    pub fn update(&mut self, key: &[u8], value: &[u8]) -> Result<bool> {
        let leaf = self.find_leaf(key)?;
        // Read the old stored value first so overflow pages can be recycled
        // and so a failed in-page replace can fall back to a split-insert.
        let old_stored = {
            let guard = self.cache.pin(self.file, leaf)?;
            let buf = guard.read();
            let r = PageRef::new(&buf);
            match r.search(key) {
                Ok(i) => r.value(i).to_vec(),
                Err(_) => return Ok(false),
            }
        };
        self.free_value(&old_stored)?;
        let stored = self.encode_value(key.len(), value)?;
        let guard = self.cache.pin(self.file, leaf)?;
        let replaced = {
            let mut buf = guard.write();
            let mut p = PageMut::new(&mut buf);
            match p.as_ref().search(key) {
                Ok(i) => p.replace_value(i, &stored),
                Err(_) => {
                    return Err(PregelixError::internal(
                        "key vanished between pins (single-writer discipline violated)",
                    ))
                }
            }
        };
        drop(guard);
        if !replaced {
            // The entry was removed inside `replace_value`; re-insert via
            // the split-capable path. `stored` is already encoded, so use
            // the raw insertion routine.
            if let Some((sep, right)) = self.insert_rec(self.root, key, &stored, true)? {
                self.grow_root(sep, right)?;
            }
        }
        Ok(true)
    }

    /// Remove a key. Returns `false` when absent. Pages are never merged;
    /// empty leaves remain in the sibling chain and scans skip them.
    pub fn delete(&mut self, key: &[u8]) -> Result<bool> {
        let leaf = self.find_leaf(key)?;
        let old_stored = {
            let guard = self.cache.pin(self.file, leaf)?;
            let mut buf = guard.write();
            let mut p = PageMut::new(&mut buf);
            match p.as_ref().search(key) {
                Ok(i) => {
                    let stored = p.as_ref().value(i).to_vec();
                    p.remove(i);
                    stored
                }
                Err(_) => return Ok(false),
            }
        };
        self.free_value(&old_stored)?;
        Ok(true)
    }

    /// Recursive insert of an already-encoded value. `allow_replace` is used
    /// by the update fallback (the key is known absent then, so it is moot,
    /// but kept for clarity of the two call sites).
    fn insert_rec(
        &mut self,
        page: PageId,
        key: &[u8],
        stored: &[u8],
        _allow_replace: bool,
    ) -> Result<Option<(Vec<u8>, PageId)>> {
        let (ptype, level) = {
            let guard = self.cache.pin(self.file, page)?;
            let buf = guard.read();
            let r = PageRef::new(&buf);
            (r.page_type()?, r.level())
        };
        match ptype {
            PageType::Leaf => self.leaf_insert(page, key, stored),
            PageType::Interior => {
                let (idx, child) = {
                    let guard = self.cache.pin(self.file, page)?;
                    let buf = guard.read();
                    let r = PageRef::new(&buf);
                    let idx = match r.search(key) {
                        Ok(i) => i,
                        Err(0) => 0,
                        Err(i) => i - 1,
                    };
                    (
                        idx,
                        u64::from_le_bytes(r.value(idx).try_into().expect("child pointer")),
                    )
                };
                let _ = idx;
                if let Some((sep, right)) = self.insert_rec(child, key, stored, _allow_replace)? {
                    return self.interior_insert(page, level, &sep, right);
                }
                Ok(None)
            }
            t => Err(PregelixError::corrupt(format!("unexpected page type {t:?}"))),
        }
    }

    fn leaf_insert(
        &mut self,
        page: PageId,
        key: &[u8],
        stored: &[u8],
    ) -> Result<Option<(Vec<u8>, PageId)>> {
        // Fast path: fits in place.
        {
            let guard = self.cache.pin(self.file, page)?;
            let mut buf = guard.write();
            let mut p = PageMut::new(&mut buf);
            match p.as_ref().search(key) {
                Ok(_) => {
                    return Err(PregelixError::storage(format!(
                        "duplicate key insert ({} bytes)",
                        key.len()
                    )))
                }
                Err(pos) => {
                    if p.insert_at(pos, key, stored) {
                        return Ok(None);
                    }
                }
            }
        }
        // Split. Allocate the right sibling, move the upper half, then
        // insert into whichever side owns the key.
        let (right_id, right_guard) = self.cache.new_page(self.file)?;
        let left_guard = self.cache.pin(self.file, page)?;
        let sep = {
            let mut lbuf = left_guard.write();
            let mut rbuf = right_guard.write();
            let mut left = PageMut::new(&mut lbuf);
            let mut right = PageMut::init(&mut rbuf, PageType::Leaf, 0);
            right.set_next_page(left.as_ref().next_page());
            let sep = left.split_into(&mut right);
            left.set_next_page(right_id);
            // Insert into the owning side.
            let target = if key < sep.as_slice() {
                &mut left
            } else {
                &mut right
            };
            let pos = target
                .as_ref()
                .search(key)
                .expect_err("key known absent");
            if !target.insert_at(pos, key, stored) {
                return Err(PregelixError::storage(
                    "entry does not fit in a half-empty page (tuple too large)",
                ));
            }
            sep
        };
        Ok(Some((sep, right_id)))
    }

    fn interior_insert(
        &mut self,
        page: PageId,
        level: u8,
        sep: &[u8],
        child: PageId,
    ) -> Result<Option<(Vec<u8>, PageId)>> {
        let child_bytes = child.to_le_bytes();
        {
            let guard = self.cache.pin(self.file, page)?;
            let mut buf = guard.write();
            let mut p = PageMut::new(&mut buf);
            let pos = match p.as_ref().search(sep) {
                Ok(i) => i + 1, // duplicate separators cannot happen with unique keys
                Err(i) => i,
            };
            if p.insert_at(pos, sep, &child_bytes) {
                return Ok(None);
            }
        }
        let (right_id, right_guard) = self.cache.new_page(self.file)?;
        let left_guard = self.cache.pin(self.file, page)?;
        let up_sep = {
            let mut lbuf = left_guard.write();
            let mut rbuf = right_guard.write();
            let mut left = PageMut::new(&mut lbuf);
            let mut right = PageMut::init(&mut rbuf, PageType::Interior, level);
            let up = left.split_into(&mut right);
            let target = if sep < up.as_slice() {
                &mut left
            } else {
                &mut right
            };
            let pos = match target.as_ref().search(sep) {
                Ok(i) => i + 1,
                Err(i) => i,
            };
            if !target.insert_at(pos, sep, &child_bytes) {
                return Err(PregelixError::storage("separator does not fit after split"));
            }
            up
        };
        Ok(Some((up_sep, right_id)))
    }

    fn grow_root(&mut self, sep: Vec<u8>, right: PageId) -> Result<()> {
        let old_root = self.root;
        let (new_root_id, guard) = self.cache.new_page(self.file)?;
        {
            let mut buf = guard.write();
            let mut p = PageMut::init(&mut buf, PageType::Interior, self.height);
            // Leftmost child keyed by the empty string (compares lowest).
            let ok1 = p.append(b"", &old_root.to_le_bytes());
            let ok2 = p.append(&sep, &right.to_le_bytes());
            debug_assert!(ok1 && ok2, "fresh root must fit two entries");
        }
        self.root = new_root_id;
        self.height += 1;
        self.sync_meta()
    }

    // ------------------------------------------------------------------
    // Bulk load
    // ------------------------------------------------------------------

    /// Build the tree from key-sorted `(key, value)` pairs. The tree must be
    /// freshly created and empty. `fill` is the leaf fill factor in (0, 1];
    /// bulk loads that will see in-place growth should leave slack.
    ///
    /// This is the graph-load path (§5.2): scan HDFS input, partition, sort
    /// by vid, bulk load one tree per partition. Also the recovery path
    /// (§5.5).
    pub fn bulk_load<I>(&mut self, entries: I, fill: f64) -> Result<()>
    where
        I: IntoIterator<Item = (Vec<u8>, Vec<u8>)>,
    {
        if fault::active() && fault::hit(Site::BtreeOp, "bulk_load").is_some() {
            self.cache.counters().add_faults_injected(1);
            return Err(fault::injected_error(Site::BtreeOp, "bulk_load"));
        }
        let fill = fill.clamp(0.1, 1.0);
        let budget = ((self.cache.page_size() - HEADER_LEN) as f64 * fill) as usize;
        // Current leaf being filled = the initial empty root leaf.
        let mut leaves: Vec<(Vec<u8>, PageId)> = Vec::new(); // (first_key, page)
        let mut cur_leaf = self.root;
        let mut cur_first: Option<Vec<u8>> = None;
        let mut cur_used = 0usize;
        let mut last_key: Option<Vec<u8>> = None;

        for (key, value) in entries {
            if let Some(prev) = &last_key {
                if *prev >= key {
                    return Err(PregelixError::storage(
                        "bulk load input not strictly key-sorted",
                    ));
                }
            }
            let stored = self.encode_value(key.len(), &value)?;
            let entry = PageMut::entry_size(key.len(), stored.len()) + 2;
            if cur_first.is_some() && cur_used + entry > budget {
                // Seal current leaf, start a new one.
                leaves.push((cur_first.take().expect("non-empty leaf"), cur_leaf));
                let (new_id, new_guard) = self.cache.new_page(self.file)?;
                {
                    let mut buf = new_guard.write();
                    PageMut::init(&mut buf, PageType::Leaf, 0);
                }
                let prev_guard = self.cache.pin(self.file, cur_leaf)?;
                {
                    let mut buf = prev_guard.write();
                    PageMut::new(&mut buf).set_next_page(new_id);
                }
                cur_leaf = new_id;
                cur_used = 0;
            }
            let guard = self.cache.pin(self.file, cur_leaf)?;
            {
                let mut buf = guard.write();
                let mut p = PageMut::new(&mut buf);
                if !p.append(&key, &stored) {
                    return Err(PregelixError::storage(
                        "bulk-load entry exceeds page capacity",
                    ));
                }
            }
            if cur_first.is_none() {
                cur_first = Some(key.clone());
            }
            cur_used += entry;
            last_key = Some(key);
        }
        if let Some(first) = cur_first {
            leaves.push((first, cur_leaf));
        }
        if leaves.len() <= 1 {
            // Root stays the single leaf.
            return self.sync_meta();
        }

        // Build interior levels bottom-up.
        let mut level_nodes = leaves;
        let mut level = 1u8;
        while level_nodes.len() > 1 {
            let mut next_level: Vec<(Vec<u8>, PageId)> = Vec::new();
            let mut cur: Option<(PageId, Vec<u8>)> = None; // (page, first_key)
            for (i, (first_key, child)) in level_nodes.iter().enumerate() {
                // The first entry of each interior node uses the empty key
                // so descents for keys below the first separator still land
                // in the leftmost child.
                let entry_key: &[u8] = if cur.is_none() { b"" } else { first_key };
                if cur.is_none() {
                    let (pid, guard) = self.cache.new_page(self.file)?;
                    {
                        let mut buf = guard.write();
                        PageMut::init(&mut buf, PageType::Interior, level);
                    }
                    cur = Some((pid, first_key.clone()));
                    let _ = i;
                }
                let (pid, _) = cur.as_ref().expect("just set");
                let pid = *pid;
                let guard = self.cache.pin(self.file, pid)?;
                let appended = {
                    let mut buf = guard.write();
                    let mut p = PageMut::new(&mut buf);
                    p.append(entry_key, &child.to_le_bytes())
                };
                if !appended {
                    // Seal this interior node, open another, retry entry.
                    let (done_pid, done_first) = cur.take().expect("open node");
                    next_level.push((done_first, done_pid));
                    let (npid, nguard) = self.cache.new_page(self.file)?;
                    {
                        let mut buf = nguard.write();
                        let mut p = PageMut::init(&mut buf, PageType::Interior, level);
                        let ok = p.append(b"", &child.to_le_bytes());
                        debug_assert!(ok, "fresh interior fits one entry");
                    }
                    cur = Some((npid, first_key.clone()));
                }
            }
            let (pid, first) = cur.expect("at least one node per level");
            next_level.push((first, pid));
            level_nodes = next_level;
            level += 1;
        }
        self.root = level_nodes[0].1;
        self.height = level;
        self.sync_meta()
    }
}

/// Sorted-probe cursor: point lookups for monotonically non-decreasing keys
/// with amortised O(1) page pins per probe (§5.2 left-outer join).
///
/// The cursor keeps the most recently answered leaf pinned. A probe whose
/// key still falls within that leaf (`key <= last entry`) is answered by a
/// binary search of the pinned page — zero additional pins. A key just past
/// the leaf follows the sibling pointer (skipping leaves emptied by
/// deletes): if the key lands within the next populated leaf, or provably
/// in the gap before its first entry, the hop answers it. Only when the key
/// jumps past that fence does the cursor re-descend from the root. Dense
/// sorted probe runs therefore pin ~one page per *leaf touched* instead of
/// `height` pages per *probe*.
///
/// Invariants:
/// * Probed keys must be non-decreasing (checked with a debug assertion);
///   out-of-order keys would be answered from a stale leaf.
/// * The tree must not be mutated while the cursor lives — the `&BTree`
///   borrow enforces this at compile time, which is why no fence keys or
///   split detection are needed.
/// * At most one leaf is pinned at a time, respecting the buffer cache's
///   pin discipline (pinned pages are exempt from eviction).
///
/// Counter accounting: every probe bumps exactly one of `probe_leaf_hits`
/// (answered from the pinned leaf or a sibling hop) or `probe_redescents`
/// (root-to-leaf descent); `probe_page_pins` counts the pages pinned on
/// behalf of probes (hops and descents — pinned-leaf answers are free).
pub struct ProbeCursor<'a> {
    tree: &'a BTree,
    /// The pinned current leaf; `None` until the first probe descends.
    leaf: Option<crate::cache::PageGuard>,
    /// Monotonicity guard for debug builds.
    #[cfg(debug_assertions)]
    last_key: Option<Vec<u8>>,
}

impl<'a> ProbeCursor<'a> {
    fn new(tree: &'a BTree) -> ProbeCursor<'a> {
        ProbeCursor {
            tree,
            leaf: None,
            #[cfg(debug_assertions)]
            last_key: None,
        }
    }

    /// Point lookup with the value materialised (overflow chains resolved),
    /// equivalent to [`BTree::search`] for non-decreasing keys.
    pub fn probe(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        match self.probe_stored(key)? {
            Some(stored) => Ok(Some(self.tree.decode_value(&stored)?)),
            None => Ok(None),
        }
    }

    /// Membership-only probe; like [`BTree::contains`], overflow chains are
    /// never touched because presence is decided from the leaf entry alone.
    pub fn probe_contains(&mut self, key: &[u8]) -> Result<bool> {
        Ok(self.probe_stored(key)?.is_some())
    }

    /// Core positioning logic; returns the raw stored leaf value.
    fn probe_stored(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        #[cfg(debug_assertions)]
        {
            if let Some(prev) = &self.last_key {
                debug_assert!(
                    prev.as_slice() <= key,
                    "probe keys must be non-decreasing"
                );
            }
            self.last_key = Some(key.to_vec());
        }
        let counters = self.tree.cache.counters().clone();

        // Fast path: the key is still covered by the pinned leaf.
        if let Some(guard) = &self.leaf {
            let found = {
                let buf = guard.read();
                let r = PageRef::new(&buf);
                if r.len() > 0 && key <= r.key(r.len() - 1) {
                    Some(match r.search(key) {
                        Ok(i) => Some(r.value(i).to_vec()),
                        Err(_) => None,
                    })
                } else {
                    None
                }
            };
            if let Some(answer) = found {
                counters.add_probe_leaf_hits(1);
                return Ok(answer);
            }
            // The key is past the pinned leaf: hop the sibling chain over
            // leaves emptied by deletes and inspect the first populated one.
            let mut next = {
                let buf = guard.read();
                PageRef::new(&buf).next_page()
            };
            while next != NO_PAGE {
                let hop = self.tree.cache.pin(self.tree.file, next)?;
                counters.add_probe_page_pins(1);
                enum Hop {
                    /// Empty leaf: keep walking the chain.
                    Skip(PageId),
                    /// The hop leaf answers the probe (hit or proven gap).
                    Answer(Option<Vec<u8>>),
                    /// Key is past this leaf's fence: re-descend.
                    Past,
                }
                let outcome = {
                    let buf = hop.read();
                    let r = PageRef::new(&buf);
                    if r.len() == 0 {
                        Hop::Skip(r.next_page())
                    } else if key <= r.key(r.len() - 1) {
                        // Within the leaf, or in the gap before its first
                        // entry — either way this leaf decides the probe.
                        Hop::Answer(match r.search(key) {
                            Ok(i) => Some(r.value(i).to_vec()),
                            Err(_) => None,
                        })
                    } else if r.next_page() == NO_PAGE {
                        // Rightmost leaf: the key is beyond every entry.
                        Hop::Answer(None)
                    } else {
                        Hop::Past
                    }
                };
                match outcome {
                    Hop::Skip(n) => next = n,
                    Hop::Answer(answer) => {
                        counters.add_probe_leaf_hits(1);
                        self.leaf = Some(hop);
                        return Ok(answer);
                    }
                    Hop::Past => break,
                }
            }
        }

        // Slow path: descend from the root.
        counters.add_probe_redescents(1);
        counters.add_probe_page_pins(self.tree.height as u64 + 1);
        let leaf = self.tree.find_leaf(key)?;
        let guard = self.tree.cache.pin(self.tree.file, leaf)?;
        let answer = {
            let buf = guard.read();
            let r = PageRef::new(&buf);
            match r.search(key) {
                Ok(i) => Some(r.value(i).to_vec()),
                Err(_) => None,
            }
        };
        self.leaf = Some(guard);
        Ok(answer)
    }
}

/// Ordered scanner over a B-tree's live entries, batching one leaf at a
/// time. Values are fully materialised (overflow chains resolved).
pub struct BTreeScanner<'a> {
    tree: &'a BTree,
    batch: Vec<(Vec<u8>, Vec<u8>)>,
    idx: usize,
    next_leaf: u64,
}

impl<'a> BTreeScanner<'a> {
    fn start(tree: &'a BTree, leaf: PageId, from: Option<Vec<u8>>) -> Result<Self> {
        let mut s = BTreeScanner {
            tree,
            batch: Vec::new(),
            idx: 0,
            next_leaf: leaf,
        };
        s.load_next_leaf(from.as_deref())?;
        Ok(s)
    }

    fn load_next_leaf(&mut self, from: Option<&[u8]>) -> Result<bool> {
        loop {
            if self.next_leaf == NO_PAGE {
                self.batch.clear();
                self.idx = 0;
                return Ok(false);
            }
            let stored: Vec<(Vec<u8>, Vec<u8>)> = {
                let guard = self.tree.cache.pin(self.tree.file, self.next_leaf)?;
                let buf = guard.read();
                let r = PageRef::new(&buf);
                self.next_leaf = r.next_page();
                let start = match from {
                    Some(k) => match r.search(k) {
                        Ok(i) => i,
                        Err(i) => i,
                    },
                    None => 0,
                };
                (start..r.len())
                    .map(|i| {
                        let (k, v) = r.entry(i);
                        (k.to_vec(), v.to_vec())
                    })
                    .collect()
            };
            // Resolve overflow values outside the page pin.
            self.batch.clear();
            for (k, stored_v) in stored {
                self.batch.push((k, self.tree.decode_value(&stored_v)?));
            }
            self.idx = 0;
            if !self.batch.is_empty() {
                return Ok(true);
            }
            // Empty leaf (all entries deleted): keep walking the chain, and
            // `from` only applies to the first leaf.
            if self.next_leaf == NO_PAGE {
                return Ok(false);
            }
        }
    }

    /// The next `(key, value)` in key order, or `None` at the end.
    pub fn next_entry(&mut self) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        if self.idx >= self.batch.len() && !self.load_next_leaf(None)? {
            return Ok(None);
        }
        let item = std::mem::take(&mut self.batch[self.idx]);
        self.idx += 1;
        Ok(Some(item))
    }

    /// Peek at the next key without consuming the entry.
    pub fn peek_key(&mut self) -> Result<Option<&[u8]>> {
        if self.idx >= self.batch.len() && !self.load_next_leaf(None)? {
            return Ok(None);
        }
        Ok(Some(&self.batch[self.idx].0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::{FileManager, TempDir};
    use pregelix_common::stats::ClusterCounters;
    use rand::prelude::*;
    use std::collections::BTreeMap;

    fn make_cache(capacity: usize, page_size: usize) -> (BufferCache, TempDir) {
        let dir = TempDir::new("btree").unwrap();
        let fm = FileManager::new(dir.path(), page_size, ClusterCounters::new()).unwrap();
        (BufferCache::new(fm, capacity), dir)
    }

    fn k(v: u64) -> Vec<u8> {
        v.to_be_bytes().to_vec()
    }

    #[test]
    fn empty_tree_behaviour() {
        let (cache, _d) = make_cache(64, 512);
        let t = BTree::create(cache).unwrap();
        assert_eq!(t.search(&k(1)).unwrap(), None);
        assert_eq!(t.count().unwrap(), 0);
        let mut s = t.scan().unwrap();
        assert!(s.next_entry().unwrap().is_none());
    }

    #[test]
    fn insert_search_small() {
        let (cache, _d) = make_cache(64, 512);
        let mut t = BTree::create(cache).unwrap();
        for v in [5u64, 1, 9, 3] {
            t.insert(&k(v), format!("val{v}").as_bytes()).unwrap();
        }
        assert_eq!(t.search(&k(9)).unwrap().unwrap(), b"val9");
        assert_eq!(t.search(&k(4)).unwrap(), None);
        assert!(t.contains(&k(1)).unwrap());
        assert_eq!(t.count().unwrap(), 4);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let (cache, _d) = make_cache(64, 512);
        let mut t = BTree::create(cache).unwrap();
        t.insert(&k(1), b"a").unwrap();
        assert!(t.insert(&k(1), b"b").is_err());
        t.upsert(&k(1), b"b").unwrap();
        assert_eq!(t.search(&k(1)).unwrap().unwrap(), b"b");
    }

    #[test]
    fn many_inserts_split_and_stay_sorted() {
        let (cache, _d) = make_cache(256, 256);
        let mut t = BTree::create(cache).unwrap();
        let mut vids: Vec<u64> = (0..2000).collect();
        vids.shuffle(&mut StdRng::seed_from_u64(7));
        for v in &vids {
            t.insert(&k(*v), &v.to_le_bytes()).unwrap();
        }
        assert!(t.height() > 1, "tree must have split");
        // Full ordered scan.
        let mut scan = t.scan().unwrap();
        let mut expect = 0u64;
        while let Some((key, val)) = scan.next_entry().unwrap() {
            assert_eq!(key, k(expect));
            assert_eq!(val, expect.to_le_bytes());
            expect += 1;
        }
        assert_eq!(expect, 2000);
        // Point lookups.
        for v in [0u64, 1, 999, 1999] {
            assert_eq!(t.search(&k(v)).unwrap().unwrap(), v.to_le_bytes());
        }
    }

    #[test]
    fn updates_in_place_and_with_growth() {
        let (cache, _d) = make_cache(256, 256);
        let mut t = BTree::create(cache).unwrap();
        for v in 0..500u64 {
            t.insert(&k(v), &[1u8; 8]).unwrap();
        }
        // Same-size updates (PageRank-style).
        for v in 0..500u64 {
            assert!(t.update(&k(v), &v.to_le_bytes()).unwrap());
        }
        assert_eq!(t.search(&k(123)).unwrap().unwrap(), 123u64.to_le_bytes());
        // Growing updates force removes/reinserts and possibly splits.
        for v in 0..500u64 {
            let grown = vec![v as u8; 40];
            assert!(t.update(&k(v), &grown).unwrap());
        }
        for v in (0..500u64).step_by(37) {
            assert_eq!(t.search(&k(v)).unwrap().unwrap(), vec![v as u8; 40]);
        }
        assert_eq!(t.count().unwrap(), 500);
        assert!(!t.update(&k(10_000), b"x").unwrap());
    }

    #[test]
    fn delete_removes_and_scan_skips() {
        let (cache, _d) = make_cache(256, 256);
        let mut t = BTree::create(cache).unwrap();
        for v in 0..300u64 {
            t.insert(&k(v), b"v").unwrap();
        }
        for v in (0..300u64).filter(|v| v % 2 == 0) {
            assert!(t.delete(&k(v)).unwrap());
        }
        assert!(!t.delete(&k(0)).unwrap(), "double delete is a no-op");
        assert_eq!(t.count().unwrap(), 150);
        let mut scan = t.scan().unwrap();
        while let Some((key, _)) = scan.next_entry().unwrap() {
            let v = u64::from_be_bytes(key.try_into().unwrap());
            assert_eq!(v % 2, 1);
        }
    }

    #[test]
    fn bulk_load_builds_multi_level_tree() {
        let (cache, _d) = make_cache(256, 256);
        let mut t = BTree::create(cache).unwrap();
        let entries: Vec<_> = (0..5000u64).map(|v| (k(v), v.to_le_bytes().to_vec())).collect();
        t.bulk_load(entries, 0.9).unwrap();
        assert!(t.height() >= 3, "5000 entries on 256B pages needs 3+ levels");
        assert_eq!(t.count().unwrap(), 5000);
        for v in [0u64, 1, 2499, 4999] {
            assert_eq!(t.search(&k(v)).unwrap().unwrap(), v.to_le_bytes());
        }
        assert_eq!(t.search(&k(5000)).unwrap(), None);
        // scan_from starts mid-tree.
        let mut s = t.scan_from(&k(4990)).unwrap();
        let mut seen = 0;
        while s.next_entry().unwrap().is_some() {
            seen += 1;
        }
        assert_eq!(seen, 10);
    }

    #[test]
    fn bulk_load_rejects_unsorted_input() {
        let (cache, _d) = make_cache(64, 256);
        let mut t = BTree::create(cache).unwrap();
        let entries = vec![(k(2), vec![]), (k(1), vec![])];
        assert!(t.bulk_load(entries, 0.9).is_err());
    }

    #[test]
    fn inserts_after_bulk_load() {
        let (cache, _d) = make_cache(256, 256);
        let mut t = BTree::create(cache).unwrap();
        let entries: Vec<_> = (0..1000u64).map(|v| (k(v * 2), vec![0u8; 8])).collect();
        t.bulk_load(entries, 0.8).unwrap();
        for v in 0..1000u64 {
            t.insert(&k(v * 2 + 1), &[1u8; 8]).unwrap();
        }
        assert_eq!(t.count().unwrap(), 2000);
        let mut scan = t.scan().unwrap();
        let mut prev: Option<Vec<u8>> = None;
        while let Some((key, _)) = scan.next_entry().unwrap() {
            if let Some(p) = &prev {
                assert!(*p < key);
            }
            prev = Some(key);
        }
    }

    #[test]
    fn overflow_values_roundtrip() {
        let (cache, _d) = make_cache(64, 256);
        let mut t = BTree::create(cache).unwrap();
        let big = (0..10_000u32).map(|i| i as u8).collect::<Vec<_>>();
        t.insert(&k(7), &big).unwrap();
        t.insert(&k(8), b"small").unwrap();
        assert_eq!(t.search(&k(7)).unwrap().unwrap(), big);
        assert_eq!(t.search(&k(8)).unwrap().unwrap(), b"small");
        // Update the big value: old chain recycled, new content visible.
        let bigger = vec![0xCD; 20_000];
        assert!(t.update(&k(7), &bigger).unwrap());
        assert_eq!(t.search(&k(7)).unwrap().unwrap(), bigger);
        // Scan resolves overflow too.
        let mut scan = t.scan().unwrap();
        let (key, val) = scan.next_entry().unwrap().unwrap();
        assert_eq!(key, k(7));
        assert_eq!(val.len(), 20_000);
    }

    #[test]
    fn flush_and_reopen() {
        let (cache, _d) = make_cache(256, 256);
        let file;
        {
            let mut t = BTree::create(cache.clone()).unwrap();
            file = t.file();
            for v in 0..800u64 {
                t.insert(&k(v), &v.to_le_bytes()).unwrap();
            }
            t.flush().unwrap();
        }
        cache.purge_file(file, true).unwrap();
        let t = BTree::open(cache, file).unwrap();
        assert_eq!(t.count().unwrap(), 800);
        assert_eq!(t.search(&k(321)).unwrap().unwrap(), 321u64.to_le_bytes());
    }

    #[test]
    fn works_under_tiny_cache_out_of_core() {
        // 8-page cache, 256B pages = 2KB of "RAM" holding a ~64KB tree.
        let (cache, _d) = make_cache(8, 256);
        let mut t = BTree::create(cache.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let mut reference = BTreeMap::new();
        for _ in 0..3000 {
            let key = rng.gen_range(0..1500u64);
            let val = vec![rng.gen::<u8>(); rng.gen_range(1..30)];
            t.upsert(&k(key), &val).unwrap();
            reference.insert(key, val);
        }
        for (key, val) in &reference {
            assert_eq!(t.search(&k(*key)).unwrap().unwrap(), *val);
        }
        assert_eq!(t.count().unwrap() as usize, reference.len());
        assert!(
            cache.file_manager().counters().cache_evictions() > 0,
            "tiny cache must have evicted"
        );
    }

    #[test]
    fn probe_cursor_matches_search_on_sorted_probes() {
        let (cache, _d) = make_cache(256, 256);
        let mut t = BTree::create(cache).unwrap();
        // Keys 0, 3, 6, ... — probes hit entries, gaps and the far end.
        let entries: Vec<_> = (0..2000u64).map(|v| (k(v * 3), (v * 3).to_le_bytes().to_vec())).collect();
        t.bulk_load(entries, 0.9).unwrap();
        let mut cursor = t.probe_cursor();
        for probe in 0..6100u64 {
            assert_eq!(
                cursor.probe(&k(probe)).unwrap(),
                t.search(&k(probe)).unwrap(),
                "probe {probe} diverged from search"
            );
        }
        // Duplicate (repeated) probe keys are allowed.
        assert_eq!(cursor.probe(&k(6100)).unwrap(), None);
        assert_eq!(cursor.probe(&k(6100)).unwrap(), None);
    }

    #[test]
    fn probe_cursor_counters_show_amortised_descents() {
        let (cache, _d) = make_cache(256, 256);
        let c = cache.counters().clone();
        let mut t = BTree::create(cache).unwrap();
        let entries: Vec<_> = (0..4000u64).map(|v| (k(v), v.to_le_bytes().to_vec())).collect();
        t.bulk_load(entries, 0.9).unwrap();
        assert!(t.height() >= 3);
        let before = c.snapshot();
        let mut cursor = t.probe_cursor();
        let probes = 1000u64;
        for v in 0..probes {
            // Every 4th vid "live": a dense sorted probe run with gaps.
            assert!(cursor.probe(&k(v * 4)).unwrap().is_some());
        }
        let d = c.snapshot().delta_since(&before);
        assert_eq!(d.probe_leaf_hits + d.probe_redescents, probes);
        assert!(
            d.probe_leaf_hits > probes * 9 / 10,
            "dense sorted probes should mostly hit the pinned leaf: {d:?}"
        );
        // The whole point: far fewer page pins than height × probes.
        assert!(
            d.probe_page_pins < probes * t.height() as u64 / 2,
            "expected ≥2x pin reduction: {} pins for {probes} probes at height {}",
            d.probe_page_pins,
            t.height()
        );
    }

    #[test]
    fn probe_cursor_sees_deletes_and_empty_leaves() {
        let (cache, _d) = make_cache(256, 256);
        let mut t = BTree::create(cache).unwrap();
        for v in 0..600u64 {
            t.insert(&k(v), &v.to_le_bytes()).unwrap();
        }
        // Carve an empty-leaf region in the middle of the sibling chain.
        for v in 200..400u64 {
            t.delete(&k(v)).unwrap();
        }
        let mut cursor = t.probe_cursor();
        for v in 0..700u64 {
            assert_eq!(cursor.probe(&k(v)).unwrap(), t.search(&k(v)).unwrap());
        }
    }

    #[test]
    fn probe_cursor_on_empty_tree() {
        let (cache, _d) = make_cache(64, 512);
        let t = BTree::create(cache).unwrap();
        let mut cursor = t.probe_cursor();
        for v in 0..10u64 {
            assert_eq!(cursor.probe(&k(v)).unwrap(), None);
        }
    }

    /// Regression: a key whose value spilled to an overflow chain must still
    /// be reported present by `contains` — presence is decided from the leaf
    /// entry (key + overflow pointer), never by walking the chain.
    #[test]
    fn contains_sees_overflow_keys_without_touching_chains() {
        let (cache, _d) = make_cache(256, 256);
        let c = cache.counters().clone();
        let mut t = BTree::create(cache.clone()).unwrap();
        let big = vec![0xAB; 20_000]; // ~90 overflow pages at 256B
        t.insert(&k(7), &big).unwrap();
        assert!(t.contains(&k(7)).unwrap());
        assert!(!t.contains(&k(8)).unwrap());
        // Cold-cache proof that the chain is not walked: after a purge, a
        // `contains` must only fault in the descent path, not ~90 chain pages.
        t.flush().unwrap();
        let file = t.file();
        cache.purge_file(file, true).unwrap();
        let t = BTree::open(cache, file).unwrap();
        let before = c.snapshot();
        assert!(t.contains(&k(7)).unwrap());
        let d = c.snapshot().delta_since(&before);
        assert!(
            d.cache_misses <= t.height() as u64 + 2,
            "contains must not fault in the overflow chain: {} misses",
            d.cache_misses
        );
        // The value itself is intact.
        assert_eq!(t.search(&k(7)).unwrap().unwrap(), big);
    }

    #[test]
    fn sidecar_roundtrip_and_persistence() {
        let (cache, _d) = make_cache(256, 256);
        let file;
        {
            let mut t = BTree::create(cache.clone()).unwrap();
            file = t.file();
            for v in 0..500u64 {
                t.insert(&k(v), &v.to_le_bytes()).unwrap();
            }
            assert_eq!(t.read_sidecar().unwrap(), None);
            // Multi-page blob (1000 bytes on 256B pages).
            let blob: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
            t.write_sidecar(&blob).unwrap();
            assert_eq!(t.read_sidecar().unwrap().unwrap(), blob);
            // Replacing recycles the old chain and survives tree growth.
            let blob2 = vec![0x5A; 100];
            t.write_sidecar(&blob2).unwrap();
            for v in 500..1500u64 {
                t.insert(&k(v), &v.to_le_bytes()).unwrap();
            }
            assert_eq!(t.read_sidecar().unwrap().unwrap(), blob2);
            t.flush().unwrap();
        }
        cache.purge_file(file, true).unwrap();
        let mut t = BTree::open(cache, file).unwrap();
        assert_eq!(t.read_sidecar().unwrap().unwrap(), vec![0x5A; 100]);
        assert_eq!(t.count().unwrap(), 1500);
        // Clearing removes it durably.
        t.write_sidecar(&[]).unwrap();
        assert_eq!(t.read_sidecar().unwrap(), None);
    }

    #[test]
    fn randomised_against_reference_model() {
        let (cache, _d) = make_cache(128, 256);
        let mut t = BTree::create(cache).unwrap();
        let mut model = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(2024);
        for step in 0..5000 {
            let key = rng.gen_range(0..800u64);
            match rng.gen_range(0..10) {
                0..=5 => {
                    let val = vec![(step % 251) as u8; rng.gen_range(0..20)];
                    t.upsert(&k(key), &val).unwrap();
                    model.insert(key, val);
                }
                6..=7 => {
                    let expected = model.remove(&key).is_some();
                    assert_eq!(t.delete(&k(key)).unwrap(), expected);
                }
                _ => {
                    assert_eq!(t.search(&k(key)).unwrap(), model.get(&key).cloned());
                }
            }
        }
        // Final full comparison via scan.
        let mut scan = t.scan().unwrap();
        let mut model_iter = model.iter();
        while let Some((key, val)) = scan.next_entry().unwrap() {
            let (mk, mv) = model_iter.next().expect("model shorter than tree");
            assert_eq!(key, k(*mk));
            assert_eq!(&val, mv);
        }
        assert!(model_iter.next().is_none(), "tree shorter than model");
    }
}
