//! External sort with bounded memory and aggregation-during-sort.
//!
//! This implements the engine behind the sort-based and HashSort group-by
//! operators (§4): tuples are collected into a bounded in-memory buffer;
//! when the buffer exceeds its budget it is sorted (by the whole tuple's
//! byte order — for keyed tuples this is vid order) and spilled as a run
//! file; `finish` merges all runs plus the residual buffer with a k-way
//! merge.
//!
//! The in-memory phase is **frame-native**: tuples append into a pooled
//! [`TupleArena`] (contiguous chunk storage, recycled across spills) and
//! sorting permutes a vector of small sort entries — an 8-byte normalized
//! key prefix plus a 12-byte [`TupleRef`]. Large batches are ordered by
//! the LSB radix path of [`crate::radix::TupleRadixSorter`] (software
//! write-combining scatter over the prefix bytes, degenerate passes
//! skipped, equal-prefix ties comparison-sorted); small batches take a
//! comparison sort that still resolves on the prefix `u64` for all but
//! equal-key tuples. Either way the sort rarely touches
//! tuple bytes at all. No per-tuple heap allocation happens anywhere on
//! this path — the asymmetry against object-per-message runtimes that the
//! paper's byte-oriented frame design buys (§5.4). Spilling a sorted run is
//! a sequential walk over the arena chunks into a [`RunWriter`]. The merge
//! phase is equally allocation-free:
//! a manual binary heap orders *source indices* whose current tuples are
//! borrowed in place from the residual arena or from each run reader's
//! current frame, and [`SortedStream::next_tuple`] lends `&[u8]` slices to
//! the consumer instead of handing out owned vectors.
//!
//! An optional *combiner* is applied to adjacent equal-key tuples in **both**
//! the in-memory phase and the merge phase, exactly as the paper describes
//! for the sort-based group-by ("pushes group-by aggregations into both the
//! in-memory sort phase and the merge phase of an external sort operator").
//! Combining before spilling is what keeps message-intensive workloads like
//! PageRank from writing the full message volume to disk.

use crate::file::FileManager;
use crate::radix::{SortMode, TupleRadixSorter};
use crate::runfile::{RunHandle, RunReader, RunWriter};
use pregelix_common::arena::{TupleArena, TupleRef, DEFAULT_ARENA_CHUNK_BYTES};
use pregelix_common::error::Result;
use pregelix_common::frame::{key_prefix, tuple_vid};
use std::cmp::Ordering;

/// Combines two tuples that share the same 8-byte key prefix into one.
/// Receives the accumulated tuple and the incoming tuple; returns the merged
/// tuple (which must keep the same key prefix).
pub type CombineFn = Box<dyn FnMut(&[u8], &[u8]) -> Vec<u8> + Send>;

/// Per-buffered-tuple bookkeeping cost charged against the memory budget
/// (the size of one sort entry: key prefix + [`TupleRef`]).
const REF_COST: usize = std::mem::size_of::<(u64, TupleRef)>();

/// An external sorter over keyed tuples.
pub struct ExternalSorter {
    fm: FileManager,
    label: String,
    budget_bytes: usize,
    arena: TupleArena,
    refs: Vec<(u64, TupleRef)>,
    sorter: TupleRadixSorter,
    runs: Vec<RunHandle>,
    combiner: Option<CombineFn>,
}

impl ExternalSorter {
    /// Create a sorter spilling through `fm` with an in-memory budget of
    /// `budget_bytes`. `label` names the temp files for debuggability.
    pub fn new(fm: FileManager, label: impl Into<String>, budget_bytes: usize) -> Self {
        let budget_bytes = budget_bytes.max(1024);
        // Chunks no larger than the budget, so small-budget sorters do not
        // overshoot their simulated RAM share; pooling keeps the per-spill
        // allocation count at O(budget / chunk size) either way.
        let chunk = budget_bytes.min(DEFAULT_ARENA_CHUNK_BYTES);
        let arena = TupleArena::with_counters(chunk, fm.counters().clone());
        let sorter = TupleRadixSorter::with_counters(SortMode::Auto, fm.counters().clone());
        ExternalSorter {
            fm,
            label: label.into(),
            budget_bytes,
            arena,
            refs: Vec::new(),
            sorter,
            runs: Vec::new(),
            combiner: None,
        }
    }

    /// Install a combiner applied to adjacent equal-key tuples during the
    /// sort and merge phases.
    pub fn with_combiner(mut self, combiner: CombineFn) -> Self {
        self.combiner = Some(combiner);
        self
    }

    /// Override the in-memory sort implementation (default
    /// [`SortMode::Auto`]). [`SortMode::ComparisonOnly`] keeps the PR 1
    /// comparison sorter selectable for benchmarks and equivalence tests.
    pub fn with_sort_mode(mut self, mode: SortMode) -> Self {
        self.sorter = TupleRadixSorter::with_counters(mode, self.fm.counters().clone());
        self
    }

    /// Lower the radix threshold of the in-memory sort (default
    /// [`crate::radix::TUPLE_RADIX_MIN_ENTRIES`]). Test/benchmark hook:
    /// lets small spill batches exercise the full radix plan end-to-end.
    pub fn with_sort_min_entries(mut self, min_entries: usize) -> Self {
        self.sorter.set_min_entries(min_entries);
        self
    }

    /// Number of runs spilled so far.
    pub fn spilled_runs(&self) -> usize {
        self.runs.len()
    }

    /// Add a tuple; may trigger a spill. The tuple bytes are copied into
    /// the arena — no allocation is performed for the copy.
    pub fn add(&mut self, tuple: &[u8]) -> Result<()> {
        let r = self.arena.append(tuple);
        self.refs.push((key_prefix(tuple), r));
        if self.arena.bytes() + self.refs.len() * REF_COST > self.budget_bytes {
            self.spill()?;
        }
        Ok(())
    }

    /// Sort the buffered refs by whole-tuple byte order: radix over the
    /// normalized key prefix for large batches (ties and small batches
    /// comparison-sorted), so the sort rarely dereferences into the arena.
    fn sort_refs(&mut self) {
        self.sorter.sort(&self.arena, &mut self.refs);
    }

    fn spill(&mut self) -> Result<()> {
        if self.refs.is_empty() {
            return Ok(());
        }
        self.sort_refs();
        let path = self.fm.temp_file_path(&self.label);
        let mut w = RunWriter::create(path, self.fm.counters().clone())?;
        let mut spilled_bytes = 0u64;
        match &mut self.combiner {
            Some(comb) => {
                fold_groups(&self.arena, &self.refs, comb, |t| {
                    spilled_bytes += t.len() as u64;
                    w.write_tuple(t)
                })?;
            }
            None => {
                for &(_, r) in &self.refs {
                    let t = self.arena.get(r);
                    spilled_bytes += t.len() as u64;
                    w.write_tuple(t)?;
                }
            }
        }
        self.runs.push(w.finish()?);
        self.fm.counters().add_sort_runs(1);
        self.fm.counters().add_sort_bytes_spilled(spilled_bytes);
        self.arena.reset();
        self.refs.clear();
        Ok(())
    }

    /// Finish adding tuples and return a sorted (combined) stream.
    pub fn finish(mut self) -> Result<SortedStream> {
        self.sort_refs();
        // Pre-combine the residual buffer (runs were pre-combined at spill
        // time), so the merge phase sees one tuple per key per source —
        // the same layout the merge combiner expects from runs.
        let memory_refs: Vec<TupleRef> = if self.combiner.is_some() && !self.refs.is_empty() {
            let mut out =
                TupleArena::with_counters(DEFAULT_ARENA_CHUNK_BYTES, self.fm.counters().clone());
            let mut out_refs = Vec::new();
            let comb = self.combiner.as_mut().expect("checked above");
            fold_groups(&self.arena, &self.refs, comb, |t| {
                out_refs.push(out.append(t));
                Ok(())
            })?;
            self.arena = out;
            out_refs
        } else {
            self.refs.iter().map(|&(_, r)| r).collect()
        };
        let mut readers = Vec::with_capacity(self.runs.len());
        for run in &self.runs {
            readers.push(run.open(self.fm.counters().clone())?);
        }
        let mut stream = SortedStream {
            memory_arena: self.arena,
            memory_refs,
            memory_pos: 0,
            readers,
            heap: Vec::new(),
            last: None,
            runs: self.runs,
            combiner: self.combiner,
            acc: Vec::new(),
        };
        stream.prime()?;
        Ok(stream)
    }
}

#[inline]
fn same_key(a: &[u8], b: &[u8]) -> bool {
    a.len() >= 8 && b.len() >= 8 && a[..8] == b[..8]
}

/// Walk `refs` (which must be sorted) group-by-group, folding equal-key
/// neighbours through `comb` and handing each finished group to `emit`.
/// The accumulator is one reused scratch buffer; single-tuple groups cost
/// one memcpy and zero allocations.
fn fold_groups(
    arena: &TupleArena,
    refs: &[(u64, TupleRef)],
    comb: &mut CombineFn,
    mut emit: impl FnMut(&[u8]) -> Result<()>,
) -> Result<()> {
    let mut acc: Vec<u8> = Vec::new();
    let mut have = false;
    for &(_, r) in refs {
        let t = arena.get(r);
        if have && same_key(&acc, t) {
            acc = comb(&acc, t);
        } else {
            if have {
                emit(&acc)?;
            }
            acc.clear();
            acc.extend_from_slice(t);
            have = true;
        }
    }
    if have {
        emit(&acc)?;
    }
    Ok(())
}

/// Source index reserved for the in-memory buffer in the merge heap. Equal
/// tuples break ties by source index, so the memory buffer sorts after
/// every run — matching run spill order.
const MEMORY_SOURCE: usize = usize::MAX;

/// The merged output of an [`ExternalSorter`]: tuples in ascending byte
/// order with the combiner applied across runs. `next_tuple` lends slices
/// into internal buffers; nothing is allocated per tuple. Deletes the
/// spilled run files when dropped.
pub struct SortedStream {
    memory_arena: TupleArena,
    memory_refs: Vec<TupleRef>,
    /// Index of the memory source's *current* tuple.
    memory_pos: usize,
    readers: Vec<RunReader>,
    /// Manual binary min-heap of live source indices, ordered by each
    /// source's current tuple (ties by source index). Heap entries never
    /// own tuple bytes — comparisons borrow from the sources in place.
    heap: Vec<usize>,
    /// Source whose current tuple was lent out by the previous
    /// `next_tuple` call; it is advanced and re-pushed on the next call.
    last: Option<usize>,
    runs: Vec<RunHandle>,
    combiner: Option<CombineFn>,
    /// Scratch accumulator for combined groups (reused across calls).
    acc: Vec<u8>,
}

impl SortedStream {
    /// Assemble a merged stream from already-sorted parts: an in-memory
    /// sorted (and pre-combined) tuple vector plus sealed sorted runs.
    /// Takes ownership of the runs and deletes them when the stream is
    /// dropped. Convenience wrapper over [`SortedStream::from_arena_parts`]
    /// for callers that hold owned tuples.
    pub fn from_parts(
        memory: Vec<Vec<u8>>,
        runs: Vec<RunHandle>,
        combiner: Option<CombineFn>,
        counters: pregelix_common::stats::ClusterCounters,
    ) -> Result<SortedStream> {
        let mut arena = TupleArena::with_counters(DEFAULT_ARENA_CHUNK_BYTES, counters.clone());
        let memory_refs: Vec<TupleRef> = memory.iter().map(|t| arena.append(t)).collect();
        Self::from_arena_parts(arena, memory_refs, runs, combiner, counters)
    }

    /// Assemble a merged stream from an arena-backed in-memory part (tuple
    /// refs must already be in ascending whole-tuple byte order) plus
    /// sealed sorted runs. Used by the HashSort group-by, which drains its
    /// hash table into a pooled arena and radix-sorts the refs — no
    /// per-tuple allocation crosses this boundary. Takes ownership of the
    /// runs and deletes them when the stream is dropped.
    pub fn from_arena_parts(
        arena: TupleArena,
        refs: Vec<TupleRef>,
        runs: Vec<RunHandle>,
        combiner: Option<CombineFn>,
        counters: pregelix_common::stats::ClusterCounters,
    ) -> Result<SortedStream> {
        debug_assert!(
            refs.windows(2).all(|w| arena.get(w[0]) <= arena.get(w[1])),
            "memory refs not sorted"
        );
        let mut readers = Vec::with_capacity(runs.len());
        for run in &runs {
            readers.push(run.open(counters.clone())?);
        }
        let mut stream = SortedStream {
            memory_arena: arena,
            memory_refs: refs,
            memory_pos: 0,
            readers,
            heap: Vec::new(),
            last: None,
            runs,
            combiner,
            acc: Vec::new(),
        };
        stream.prime()?;
        Ok(stream)
    }

    fn prime(&mut self) -> Result<()> {
        for i in 0..self.readers.len() {
            if self.readers[i].advance()? {
                self.heap_push(i);
            }
        }
        if !self.memory_refs.is_empty() {
            self.heap_push(MEMORY_SOURCE);
        }
        Ok(())
    }

    /// The current tuple of a live source.
    fn src_current(&self, s: usize) -> Option<&[u8]> {
        if s == MEMORY_SOURCE {
            self.memory_refs
                .get(self.memory_pos)
                .map(|r| self.memory_arena.get(*r))
        } else {
            self.readers[s].current()
        }
    }

    /// Strict ordering of two live sources by (current tuple, source id).
    fn src_less(&self, a: usize, b: usize) -> bool {
        let ta = self.src_current(a).expect("heap source must be live");
        let tb = self.src_current(b).expect("heap source must be live");
        match ta.cmp(tb) {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => a < b,
        }
    }

    fn heap_push(&mut self, s: usize) {
        self.heap.push(s);
        let mut i = self.heap.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.src_less(self.heap[i], self.heap[parent]) {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn heap_pop(&mut self) -> Option<usize> {
        if self.heap.is_empty() {
            return None;
        }
        let n = self.heap.len();
        self.heap.swap(0, n - 1);
        let s = self.heap.pop().expect("nonempty");
        let mut i = 0;
        loop {
            let l = 2 * i + 1;
            if l >= self.heap.len() {
                break;
            }
            let r = l + 1;
            let mut min = l;
            if r < self.heap.len() && self.src_less(self.heap[r], self.heap[l]) {
                min = r;
            }
            if self.src_less(self.heap[min], self.heap[i]) {
                self.heap.swap(i, min);
                i = min;
            } else {
                break;
            }
        }
        Some(s)
    }

    /// Advance (and re-queue if still live) the source whose tuple was lent
    /// out by the previous `next_tuple` call.
    fn advance_last(&mut self) -> Result<()> {
        let Some(s) = self.last.take() else {
            return Ok(());
        };
        let live = if s == MEMORY_SOURCE {
            self.memory_pos += 1;
            self.memory_pos < self.memory_refs.len()
        } else {
            self.readers[s].advance()?
        };
        if live {
            self.heap_push(s);
        }
        Ok(())
    }

    /// The next tuple in sorted order, or `None` when exhausted. The slice
    /// borrows from the stream and is valid until the next call.
    pub fn next_tuple(&mut self) -> Result<Option<&[u8]>> {
        self.advance_last()?;
        let Some(s) = self.heap_pop() else {
            return Ok(None);
        };
        self.last = Some(s);
        if self.combiner.is_none() {
            return Ok(self.src_current(s));
        }
        // Combining: seed the scratch accumulator from the popped tuple,
        // then fold while the heap root shares its key.
        {
            let Self {
                acc,
                memory_arena,
                memory_refs,
                memory_pos,
                readers,
                ..
            } = self;
            let cur = current_of(memory_arena, memory_refs, *memory_pos, readers, s)
                .expect("popped source is live");
            acc.clear();
            acc.extend_from_slice(cur);
        }
        loop {
            self.advance_last()?;
            let Some(&root) = self.heap.first() else {
                break;
            };
            {
                let cur = self.src_current(root).expect("heap source must be live");
                if !same_key(&self.acc, cur) {
                    break;
                }
            }
            let s2 = self.heap_pop().expect("root observed above");
            self.last = Some(s2);
            let Self {
                acc,
                combiner,
                memory_arena,
                memory_refs,
                memory_pos,
                readers,
                ..
            } = self;
            let cur = current_of(memory_arena, memory_refs, *memory_pos, readers, s2)
                .expect("popped source is live");
            let merged = (combiner.as_mut().expect("combining path"))(acc.as_slice(), cur);
            *acc = merged;
        }
        Ok(Some(&self.acc))
    }

    /// Drain the remainder into owned vectors (test/convenience path).
    pub fn collect_all(mut self) -> Result<Vec<Vec<u8>>> {
        let mut out = Vec::new();
        while let Some(t) = self.next_tuple()? {
            out.push(t.to_vec());
        }
        Ok(out)
    }
}

/// Field-disjoint variant of [`SortedStream::src_current`], callable while
/// the combiner (another field) is mutably borrowed.
fn current_of<'a>(
    arena: &'a TupleArena,
    refs: &[TupleRef],
    pos: usize,
    readers: &'a [RunReader],
    s: usize,
) -> Option<&'a [u8]> {
    if s == MEMORY_SOURCE {
        refs.get(pos).copied().map(|r| arena.get(r))
    } else {
        readers[s].current()
    }
}

impl Drop for SortedStream {
    fn drop(&mut self) {
        for run in self.runs.drain(..) {
            let _ = run.delete();
        }
    }
}

/// Convenience: the vid of a keyed tuple (first 8 bytes, big-endian).
pub fn sort_key_vid(tuple: &[u8]) -> u64 {
    tuple_vid(tuple).expect("keyed tuple")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::{FileManager, TempDir};
    use pregelix_common::frame::{keyed_tuple, tuple_payload, tuple_vid};
    use pregelix_common::stats::ClusterCounters;
    use rand::prelude::*;

    fn fm() -> (FileManager, TempDir) {
        let dir = TempDir::new("sort").unwrap();
        let f = FileManager::new(dir.path(), 4096, ClusterCounters::new()).unwrap();
        (f, dir)
    }

    #[test]
    fn in_memory_sort() {
        let (f, _d) = fm();
        let mut s = ExternalSorter::new(f, "t", 1 << 20);
        for vid in [5u64, 1, 3, 2, 4] {
            s.add(&keyed_tuple(vid, b"p")).unwrap();
        }
        assert_eq!(s.spilled_runs(), 0);
        let out = s.finish().unwrap().collect_all().unwrap();
        let vids: Vec<u64> = out.iter().map(|t| tuple_vid(t).unwrap()).collect();
        assert_eq!(vids, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn spilling_sort_matches_std_sort() {
        let (f, _d) = fm();
        // 2KB budget forces many spills for 20k tuples.
        let mut s = ExternalSorter::new(f.clone(), "t", 2048);
        let mut rng = StdRng::seed_from_u64(11);
        let mut expect = Vec::new();
        for _ in 0..20_000 {
            let vid = rng.gen_range(0..5_000u64);
            let t = keyed_tuple(vid, &vid.to_le_bytes());
            s.add(&t).unwrap();
            expect.push(t);
        }
        assert!(s.spilled_runs() > 2);
        assert!(f.counters().sort_bytes_spilled() > 0, "spill volume counted");
        expect.sort_unstable();
        let got = s.finish().unwrap().collect_all().unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn combiner_applied_within_and_across_runs() {
        let (f, _d) = fm();
        // Sum-combiner over u64 payloads.
        let combine: CombineFn = Box::new(|a, b| {
            let va = u64::from_le_bytes(tuple_payload(a).unwrap().try_into().unwrap());
            let vb = u64::from_le_bytes(tuple_payload(b).unwrap().try_into().unwrap());
            keyed_tuple(tuple_vid(a).unwrap(), &(va + vb).to_le_bytes())
        });
        let mut s = ExternalSorter::new(f, "c", 2048).with_combiner(combine);
        // 100 keys, 200 contributions of 1 each, interleaved to cross runs.
        for round in 0..200u64 {
            for vid in 0..100u64 {
                let _ = round;
                s.add(&keyed_tuple(vid, &1u64.to_le_bytes())).unwrap();
            }
        }
        assert!(s.spilled_runs() > 0, "must exercise merge-phase combining");
        let out = s.finish().unwrap().collect_all().unwrap();
        assert_eq!(out.len(), 100);
        for (i, t) in out.iter().enumerate() {
            assert_eq!(tuple_vid(t).unwrap(), i as u64);
            let sum = u64::from_le_bytes(tuple_payload(t).unwrap().try_into().unwrap());
            assert_eq!(sum, 200);
        }
    }

    #[test]
    fn radix_and_comparison_modes_agree_with_spills() {
        use crate::radix::SortMode;
        let mut outputs = Vec::new();
        let mut spilled = Vec::new();
        for mode in [SortMode::Auto, SortMode::ComparisonOnly] {
            let (f, _d) = fm();
            let mut s = ExternalSorter::new(f.clone(), "m", 4096).with_sort_mode(mode);
            let mut rng = StdRng::seed_from_u64(77);
            for _ in 0..10_000 {
                let vid = rng.gen_range(0..1_000u64);
                s.add(&keyed_tuple(vid, &vid.to_le_bytes())).unwrap();
            }
            assert!(s.spilled_runs() > 0);
            outputs.push(s.finish().unwrap().collect_all().unwrap());
            spilled.push(f.counters().sort_bytes_spilled());
        }
        assert_eq!(outputs[0], outputs[1], "modes must be byte-identical");
        assert_eq!(spilled[0], spilled[1], "zero drift in spill volume");
    }

    #[test]
    fn default_path_charges_radix_counters() {
        let (f, _d) = fm();
        let counters = f.counters().clone();
        let mut s = ExternalSorter::new(f, "rc", 1 << 20);
        // Large single batch over a byte-and-a-half of vid range: the
        // finish-time sort takes the radix path and skips the high passes.
        for vid in (0..5_000u64).rev() {
            s.add(&keyed_tuple(vid, b"")).unwrap();
        }
        let out = s.finish().unwrap().collect_all().unwrap();
        assert_eq!(out.len(), 5_000);
        assert_eq!(counters.radix_sort_entries(), 5_000);
        assert_eq!(counters.radix_passes_skipped(), 6);
        assert_eq!(counters.sort_comparison_fallbacks(), 0);
    }

    #[test]
    fn empty_sorter_yields_nothing() {
        let (f, _d) = fm();
        let s = ExternalSorter::new(f, "e", 4096);
        assert!(s.finish().unwrap().collect_all().unwrap().is_empty());
    }

    #[test]
    fn run_files_cleaned_up_on_drop() {
        let (f, _d) = fm();
        let root = f.root().to_path_buf();
        let mut s = ExternalSorter::new(f, "gc", 1024);
        for vid in 0..5000u64 {
            s.add(&keyed_tuple(vid, b"pay")).unwrap();
        }
        assert!(s.spilled_runs() > 0);
        let stream = s.finish().unwrap();
        drop(stream);
        let leftovers: Vec<_> = std::fs::read_dir(&root)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("gc"))
            .collect();
        assert!(leftovers.is_empty(), "spill files must be deleted: {leftovers:?}");
    }

    #[test]
    fn stream_is_incremental() {
        let (f, _d) = fm();
        let mut s = ExternalSorter::new(f, "i", 1024);
        for vid in (0..1000u64).rev() {
            s.add(&keyed_tuple(vid, b"")).unwrap();
        }
        let mut stream = s.finish().unwrap();
        for expect in 0..1000u64 {
            let t = stream.next_tuple().unwrap().unwrap();
            assert_eq!(tuple_vid(t).unwrap(), expect);
        }
        assert!(stream.next_tuple().unwrap().is_none());
        assert!(stream.next_tuple().unwrap().is_none(), "idempotent at end");
    }

    #[test]
    fn in_memory_phase_allocates_no_per_tuple_frames() {
        let (f, _d) = fm();
        let counters = f.counters().clone();
        // 1 MB budget, 200k tuples of 16 bytes: the buffer cycles through
        // ~3 spills. Pooled chunks mean the arena allocation count stays at
        // O(budget / chunk size), nowhere near the tuple count.
        let mut s = ExternalSorter::new(f, "alloc", 1 << 20);
        for vid in 0..200_000u64 {
            s.add(&keyed_tuple(vid % 977, &vid.to_le_bytes())).unwrap();
        }
        let frames = counters.arena_frames_allocated();
        assert!(
            frames <= 2 * ((1 << 20) / DEFAULT_ARENA_CHUNK_BYTES.min(1 << 20)) as u64 + 4,
            "arena allocations must be O(budget/chunk), got {frames}"
        );
        let out = s.finish().unwrap().collect_all().unwrap();
        assert_eq!(out.len(), 200_000);
    }
}
