//! External sort with bounded memory and aggregation-during-sort.
//!
//! This implements the engine behind the sort-based and HashSort group-by
//! operators (§4): tuples are collected into a bounded in-memory buffer;
//! when the buffer exceeds its budget it is sorted (by the whole tuple's
//! byte order — for keyed tuples this is vid order) and spilled as a run
//! file; `finish` merges all runs plus the residual buffer with a k-way
//! merge.
//!
//! An optional *combiner* is applied to adjacent equal-key tuples in **both**
//! the in-memory phase and the merge phase, exactly as the paper describes
//! for the sort-based group-by ("pushes group-by aggregations into both the
//! in-memory sort phase and the merge phase of an external sort operator").
//! Combining before spilling is what keeps message-intensive workloads like
//! PageRank from writing the full message volume to disk.

use crate::file::FileManager;
use crate::runfile::{RunHandle, RunReader, RunWriter};
use pregelix_common::error::Result;
use pregelix_common::frame::tuple_vid;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Combines two tuples that share the same 8-byte key prefix into one.
/// Receives the accumulated tuple and the incoming tuple; returns the merged
/// tuple (which must keep the same key prefix).
pub type CombineFn = Box<dyn FnMut(&[u8], &[u8]) -> Vec<u8> + Send>;

/// An external sorter over keyed tuples.
pub struct ExternalSorter {
    fm: FileManager,
    label: String,
    budget_bytes: usize,
    buffer: Vec<Vec<u8>>,
    buffer_bytes: usize,
    runs: Vec<RunHandle>,
    combiner: Option<CombineFn>,
}

impl ExternalSorter {
    /// Create a sorter spilling through `fm` with an in-memory budget of
    /// `budget_bytes`. `label` names the temp files for debuggability.
    pub fn new(fm: FileManager, label: impl Into<String>, budget_bytes: usize) -> Self {
        ExternalSorter {
            fm,
            label: label.into(),
            budget_bytes: budget_bytes.max(1024),
            buffer: Vec::new(),
            buffer_bytes: 0,
            runs: Vec::new(),
            combiner: None,
        }
    }

    /// Install a combiner applied to adjacent equal-key tuples during the
    /// sort and merge phases.
    pub fn with_combiner(mut self, combiner: CombineFn) -> Self {
        self.combiner = Some(combiner);
        self
    }

    /// Number of runs spilled so far.
    pub fn spilled_runs(&self) -> usize {
        self.runs.len()
    }

    /// Add a tuple; may trigger a spill.
    pub fn add(&mut self, tuple: Vec<u8>) -> Result<()> {
        self.buffer_bytes += tuple.len() + 24; // approximate Vec overhead
        self.buffer.push(tuple);
        if self.buffer_bytes > self.budget_bytes {
            self.spill()?;
        }
        Ok(())
    }

    /// Sort (and combine) the buffer in place, returning the ready tuples.
    fn sorted_combined_buffer(&mut self) -> Vec<Vec<u8>> {
        let mut buf = std::mem::take(&mut self.buffer);
        self.buffer_bytes = 0;
        buf.sort_unstable();
        if let Some(comb) = &mut self.combiner {
            let mut out: Vec<Vec<u8>> = Vec::with_capacity(buf.len());
            for t in buf {
                match out.last_mut() {
                    Some(acc) if same_key(acc, &t) => {
                        let merged = comb(acc, &t);
                        *acc = merged;
                    }
                    _ => out.push(t),
                }
            }
            out
        } else {
            buf
        }
    }

    fn spill(&mut self) -> Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let tuples = self.sorted_combined_buffer();
        let path = self.fm.temp_file_path(&self.label);
        let mut w = RunWriter::create(path, self.fm.counters().clone())?;
        for t in &tuples {
            w.write_tuple(t)?;
        }
        self.runs.push(w.finish()?);
        self.fm.counters().add_sort_runs(1);
        Ok(())
    }

    /// Finish adding tuples and return a sorted (combined) stream.
    pub fn finish(mut self) -> Result<SortedStream> {
        let memory = self.sorted_combined_buffer();
        let mut readers = Vec::with_capacity(self.runs.len());
        for run in &self.runs {
            readers.push(run.open(self.fm.counters().clone())?);
        }
        let mut stream = SortedStream {
            memory,
            memory_idx: 0,
            readers,
            heap: BinaryHeap::new(),
            runs: std::mem::take(&mut self.runs),
            combiner: self.combiner.take(),
            pending: None,
        };
        stream.prime()?;
        Ok(stream)
    }
}

#[inline]
fn same_key(a: &[u8], b: &[u8]) -> bool {
    a.len() >= 8 && b.len() >= 8 && a[..8] == b[..8]
}

/// Heap entry: reversed ordering on (tuple, source) for a min-heap.
type HeapEntry = Reverse<(Vec<u8>, usize)>;

/// The merged output of an [`ExternalSorter`]: tuples in ascending byte
/// order with the combiner applied across runs. Deletes the spilled run
/// files when dropped.
pub struct SortedStream {
    memory: Vec<Vec<u8>>,
    memory_idx: usize,
    readers: Vec<RunReader>,
    heap: BinaryHeap<HeapEntry>,
    runs: Vec<RunHandle>,
    combiner: Option<CombineFn>,
    pending: Option<Vec<u8>>,
}

/// Source index reserved for the in-memory buffer in the merge heap.
const MEMORY_SOURCE: usize = usize::MAX;

impl SortedStream {
    /// Assemble a merged stream from already-sorted parts: an in-memory
    /// sorted (and pre-combined) tuple vector plus sealed sorted runs. Used
    /// by the HashSort group-by, which produces its runs by draining a hash
    /// table in key order. Takes ownership of the runs and deletes them when
    /// the stream is dropped.
    pub fn from_parts(
        memory: Vec<Vec<u8>>,
        runs: Vec<RunHandle>,
        combiner: Option<CombineFn>,
        counters: pregelix_common::stats::ClusterCounters,
    ) -> Result<SortedStream> {
        debug_assert!(memory.windows(2).all(|w| w[0] <= w[1]), "memory not sorted");
        let mut readers = Vec::with_capacity(runs.len());
        for run in &runs {
            readers.push(run.open(counters.clone())?);
        }
        let mut stream = SortedStream {
            memory,
            memory_idx: 0,
            readers,
            heap: BinaryHeap::new(),
            runs,
            combiner,
            pending: None,
        };
        stream.prime()?;
        Ok(stream)
    }

    fn prime(&mut self) -> Result<()> {
        for i in 0..self.readers.len() {
            if let Some(t) = self.readers[i].next_tuple()? {
                self.heap.push(Reverse((t, i)));
            }
        }
        if self.memory_idx < self.memory.len() {
            let t = std::mem::take(&mut self.memory[self.memory_idx]);
            self.memory_idx += 1;
            self.heap.push(Reverse((t, MEMORY_SOURCE)));
        }
        Ok(())
    }

    fn pop_raw(&mut self) -> Result<Option<Vec<u8>>> {
        let Some(Reverse((tuple, source))) = self.heap.pop() else {
            return Ok(None);
        };
        // Refill from the source that produced this tuple.
        if source == MEMORY_SOURCE {
            if self.memory_idx < self.memory.len() {
                let t = std::mem::take(&mut self.memory[self.memory_idx]);
                self.memory_idx += 1;
                self.heap.push(Reverse((t, MEMORY_SOURCE)));
            }
        } else if let Some(t) = self.readers[source].next_tuple()? {
            self.heap.push(Reverse((t, source)));
        }
        Ok(Some(tuple))
    }

    /// The next tuple in sorted order, or `None` when exhausted.
    pub fn next_tuple(&mut self) -> Result<Option<Vec<u8>>> {
        let mut acc = match self.pending.take() {
            Some(t) => t,
            None => match self.pop_raw()? {
                Some(t) => t,
                None => return Ok(None),
            },
        };
        if self.combiner.is_none() {
            return Ok(Some(acc));
        }
        loop {
            match self.pop_raw()? {
                Some(t) if same_key(&acc, &t) => {
                    let comb = self.combiner.as_mut().expect("checked above");
                    acc = comb(&acc, &t);
                }
                Some(t) => {
                    self.pending = Some(t);
                    return Ok(Some(acc));
                }
                None => return Ok(Some(acc)),
            }
        }
    }

    /// Drain the remainder into a vector (test/convenience path).
    pub fn collect_all(mut self) -> Result<Vec<Vec<u8>>> {
        let mut out = Vec::new();
        while let Some(t) = self.next_tuple()? {
            out.push(t);
        }
        Ok(out)
    }
}

impl Drop for SortedStream {
    fn drop(&mut self) {
        for run in self.runs.drain(..) {
            let _ = run.delete();
        }
    }
}

/// Convenience: the vid of a keyed tuple (first 8 bytes, big-endian).
pub fn sort_key_vid(tuple: &[u8]) -> u64 {
    tuple_vid(tuple).expect("keyed tuple")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::{FileManager, TempDir};
    use pregelix_common::frame::{keyed_tuple, tuple_payload, tuple_vid};
    use pregelix_common::stats::ClusterCounters;
    use rand::prelude::*;

    fn fm() -> (FileManager, TempDir) {
        let dir = TempDir::new("sort").unwrap();
        let f = FileManager::new(dir.path(), 4096, ClusterCounters::new()).unwrap();
        (f, dir)
    }

    #[test]
    fn in_memory_sort() {
        let (f, _d) = fm();
        let mut s = ExternalSorter::new(f, "t", 1 << 20);
        for vid in [5u64, 1, 3, 2, 4] {
            s.add(keyed_tuple(vid, b"p")).unwrap();
        }
        assert_eq!(s.spilled_runs(), 0);
        let out = s.finish().unwrap().collect_all().unwrap();
        let vids: Vec<u64> = out.iter().map(|t| tuple_vid(t).unwrap()).collect();
        assert_eq!(vids, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn spilling_sort_matches_std_sort() {
        let (f, _d) = fm();
        // 2KB budget forces many spills for 20k tuples.
        let mut s = ExternalSorter::new(f, "t", 2048);
        let mut rng = StdRng::seed_from_u64(11);
        let mut expect = Vec::new();
        for _ in 0..20_000 {
            let vid = rng.gen_range(0..5_000u64);
            let t = keyed_tuple(vid, &vid.to_le_bytes());
            expect.push(t.clone());
            s.add(t).unwrap();
        }
        assert!(s.spilled_runs() > 2);
        expect.sort_unstable();
        let got = s.finish().unwrap().collect_all().unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn combiner_applied_within_and_across_runs() {
        let (f, _d) = fm();
        // Sum-combiner over u64 payloads.
        let combine: CombineFn = Box::new(|a, b| {
            let va = u64::from_le_bytes(tuple_payload(a).unwrap().try_into().unwrap());
            let vb = u64::from_le_bytes(tuple_payload(b).unwrap().try_into().unwrap());
            keyed_tuple(tuple_vid(a).unwrap(), &(va + vb).to_le_bytes())
        });
        let mut s = ExternalSorter::new(f, "c", 2048).with_combiner(combine);
        // 100 keys, 200 contributions of 1 each, interleaved to cross runs.
        for round in 0..200u64 {
            for vid in 0..100u64 {
                let _ = round;
                s.add(keyed_tuple(vid, &1u64.to_le_bytes())).unwrap();
            }
        }
        assert!(s.spilled_runs() > 0, "must exercise merge-phase combining");
        let out = s.finish().unwrap().collect_all().unwrap();
        assert_eq!(out.len(), 100);
        for (i, t) in out.iter().enumerate() {
            assert_eq!(tuple_vid(t).unwrap(), i as u64);
            let sum = u64::from_le_bytes(tuple_payload(t).unwrap().try_into().unwrap());
            assert_eq!(sum, 200);
        }
    }

    #[test]
    fn empty_sorter_yields_nothing() {
        let (f, _d) = fm();
        let s = ExternalSorter::new(f, "e", 4096);
        assert!(s.finish().unwrap().collect_all().unwrap().is_empty());
    }

    #[test]
    fn run_files_cleaned_up_on_drop() {
        let (f, _d) = fm();
        let root = f.root().to_path_buf();
        let mut s = ExternalSorter::new(f, "gc", 1024);
        for vid in 0..5000u64 {
            s.add(keyed_tuple(vid, b"pay")).unwrap();
        }
        assert!(s.spilled_runs() > 0);
        let stream = s.finish().unwrap();
        drop(stream);
        let leftovers: Vec<_> = std::fs::read_dir(&root)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("gc"))
            .collect();
        assert!(leftovers.is_empty(), "spill files must be deleted: {leftovers:?}");
    }

    #[test]
    fn stream_is_incremental() {
        let (f, _d) = fm();
        let mut s = ExternalSorter::new(f, "i", 1024);
        for vid in (0..1000u64).rev() {
            s.add(keyed_tuple(vid, b"")).unwrap();
        }
        let mut stream = s.finish().unwrap();
        for expect in 0..1000u64 {
            let t = stream.next_tuple().unwrap().unwrap();
            assert_eq!(tuple_vid(&t).unwrap(), expect);
        }
        assert!(stream.next_tuple().unwrap().is_none());
        assert!(stream.next_tuple().unwrap().is_none(), "idempotent at end");
    }
}
