//! The slotted-page layout shared by B-tree leaf and interior pages.
//!
//! Layout of a page of `P` bytes:
//!
//! ```text
//! 0        1      2         4             8            12        16        24
//! +--------+------+---------+-------------+------------+---------+---------+----
//! | type   | level| ntuples | free_offset | dead_bytes | reserved| next    | entries →
//! +--------+------+---------+-------------+------------+---------+---------+----
//!                                                              ← slot array | P
//! ```
//!
//! Entry data grows forward from byte 24; the slot array (one `u16` offset
//! per entry, kept in key order) grows backward from the page end. Each
//! entry is `u16 key_len, u16 val_len, key, val`. Removals leave dead bytes
//! that are reclaimed by [`PageMut::compact`] when an insertion would
//! otherwise fail.

use pregelix_common::error::{PregelixError, Result};

/// Byte offset where entry data begins.
pub const HEADER_LEN: usize = 24;
/// Sentinel for "no sibling page".
pub const NO_PAGE: u64 = u64::MAX;

/// Page type tags.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageType {
    /// B-tree leaf holding `(key, value)` entries.
    Leaf,
    /// B-tree interior node holding `(separator_key, child_page_id)` entries.
    Interior,
    /// File metadata page (root pointer etc.).
    Meta,
    /// Overflow page holding a chunk of a value too large to inline in a
    /// leaf (high-degree vertices). Chained via the `next` header field;
    /// the chunk length is stored in the `dead_bytes` header slot.
    Overflow,
}

impl PageType {
    fn to_byte(self) -> u8 {
        match self {
            PageType::Leaf => 0,
            PageType::Interior => 1,
            PageType::Meta => 2,
            PageType::Overflow => 3,
        }
    }

    fn from_byte(b: u8) -> Result<Self> {
        match b {
            0 => Ok(PageType::Leaf),
            1 => Ok(PageType::Interior),
            2 => Ok(PageType::Meta),
            3 => Ok(PageType::Overflow),
            _ => Err(PregelixError::corrupt(format!("bad page type {b}"))),
        }
    }
}

#[inline]
fn get_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_le_bytes(buf[off..off + 2].try_into().expect("2 bytes"))
}

#[inline]
fn put_u16(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

#[inline]
fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().expect("4 bytes"))
}

#[inline]
fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

#[inline]
fn get_u64(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().expect("8 bytes"))
}

#[inline]
fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

/// Read-only view of a slotted page.
#[derive(Clone, Copy)]
pub struct PageRef<'a> {
    buf: &'a [u8],
}

impl<'a> PageRef<'a> {
    /// Wrap a page buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        debug_assert!(buf.len() > HEADER_LEN + 2);
        PageRef { buf }
    }

    /// The page's type tag.
    pub fn page_type(&self) -> Result<PageType> {
        PageType::from_byte(self.buf[0])
    }

    /// Tree level (0 = leaf).
    pub fn level(&self) -> u8 {
        self.buf[1]
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        get_u16(self.buf, 2) as usize
    }

    /// Whether the page has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sibling page id for leaves ([`NO_PAGE`] when absent).
    pub fn next_page(&self) -> u64 {
        get_u64(self.buf, 16)
    }

    fn slot(&self, i: usize) -> usize {
        get_u16(self.buf, self.buf.len() - 2 * (i + 1)) as usize
    }

    /// Borrow entry `i` as `(key, value)`.
    pub fn entry(&self, i: usize) -> (&'a [u8], &'a [u8]) {
        let off = self.slot(i);
        let klen = get_u16(self.buf, off) as usize;
        let vlen = get_u16(self.buf, off + 2) as usize;
        let kstart = off + 4;
        (
            &self.buf[kstart..kstart + klen],
            &self.buf[kstart + klen..kstart + klen + vlen],
        )
    }

    /// Borrow the key of entry `i`.
    pub fn key(&self, i: usize) -> &'a [u8] {
        self.entry(i).0
    }

    /// Borrow the value of entry `i`.
    pub fn value(&self, i: usize) -> &'a [u8] {
        self.entry(i).1
    }

    /// Binary search for `key` among the entries.
    pub fn search(&self, key: &[u8]) -> std::result::Result<usize, usize> {
        let mut lo = 0usize;
        let mut hi = self.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.key(mid).cmp(key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// Bytes of live entry data plus slot overhead.
    pub fn used_bytes(&self) -> usize {
        let free_offset = get_u32(self.buf, 4) as usize;
        let dead = get_u32(self.buf, 8) as usize;
        (free_offset - HEADER_LEN - dead) + 2 * self.len()
    }

    /// Bytes available for a new entry without compaction.
    pub fn contiguous_free(&self) -> usize {
        let free_offset = get_u32(self.buf, 4) as usize;
        let slot_end = self.buf.len() - 2 * self.len();
        slot_end.saturating_sub(free_offset)
    }

    /// Bytes that compaction would additionally reclaim.
    pub fn dead_bytes(&self) -> usize {
        get_u32(self.buf, 8) as usize
    }
}

/// Mutable view of a slotted page.
pub struct PageMut<'a> {
    buf: &'a mut [u8],
}

impl<'a> PageMut<'a> {
    /// Wrap a page buffer for mutation (must already be initialised).
    pub fn new(buf: &'a mut [u8]) -> Self {
        debug_assert!(buf.len() > HEADER_LEN + 2);
        PageMut { buf }
    }

    /// Initialise a blank page of the given type/level.
    pub fn init(buf: &'a mut [u8], page_type: PageType, level: u8) -> Self {
        buf[0] = page_type.to_byte();
        buf[1] = level;
        put_u16(buf, 2, 0);
        put_u32(buf, 4, HEADER_LEN as u32);
        put_u32(buf, 8, 0);
        put_u32(buf, 12, 0);
        put_u64(buf, 16, NO_PAGE);
        PageMut { buf }
    }

    /// Immutable view of this page.
    pub fn as_ref(&self) -> PageRef<'_> {
        PageRef { buf: self.buf }
    }

    /// Set the leaf sibling pointer.
    pub fn set_next_page(&mut self, next: u64) {
        put_u64(self.buf, 16, next);
    }

    /// Size in bytes an entry with the given key/value lengths occupies
    /// (excluding its slot).
    pub fn entry_size(key_len: usize, val_len: usize) -> usize {
        4 + key_len + val_len
    }

    /// Insert `(key, value)` at slot position `i` (shifting later slots).
    /// Returns `false` if the page lacks space even after compaction.
    pub fn insert_at(&mut self, i: usize, key: &[u8], value: &[u8]) -> bool {
        let need = Self::entry_size(key.len(), value.len()) + 2;
        if self.as_ref().contiguous_free() < need {
            if self.as_ref().contiguous_free() + self.as_ref().dead_bytes() < need {
                return false;
            }
            self.compact();
            if self.as_ref().contiguous_free() < need {
                return false;
            }
        }
        let n = self.as_ref().len();
        debug_assert!(i <= n);
        let free_offset = get_u32(self.buf, 4) as usize;
        // Write entry data.
        put_u16(self.buf, free_offset, key.len() as u16);
        put_u16(self.buf, free_offset + 2, value.len() as u16);
        self.buf[free_offset + 4..free_offset + 4 + key.len()].copy_from_slice(key);
        self.buf[free_offset + 4 + key.len()..free_offset + 4 + key.len() + value.len()]
            .copy_from_slice(value);
        put_u32(
            self.buf,
            4,
            (free_offset + Self::entry_size(key.len(), value.len())) as u32,
        );
        // Shift slots i..n down by one position (each slot lives 2 bytes
        // *lower* in memory per increasing index).
        let end = self.buf.len();
        for j in (i..n).rev() {
            let v = get_u16(self.buf, end - 2 * (j + 1));
            put_u16(self.buf, end - 2 * (j + 2), v);
        }
        put_u16(self.buf, end - 2 * (i + 1), free_offset as u16);
        put_u16(self.buf, 2, (n + 1) as u16);
        true
    }

    /// Append an entry that sorts after every existing key (bulk-load path).
    pub fn append(&mut self, key: &[u8], value: &[u8]) -> bool {
        debug_assert!(
            self.as_ref().is_empty() || self.as_ref().key(self.as_ref().len() - 1) <= key,
            "append would violate key order"
        );
        let n = self.as_ref().len();
        self.insert_at(n, key, value)
    }

    /// Remove entry `i`, leaving its bytes dead until compaction.
    pub fn remove(&mut self, i: usize) {
        let n = self.as_ref().len();
        debug_assert!(i < n);
        let off = self.as_ref().slot(i);
        let klen = get_u16(self.buf, off) as usize;
        let vlen = get_u16(self.buf, off + 2) as usize;
        let dead = get_u32(self.buf, 8) as usize + Self::entry_size(klen, vlen);
        put_u32(self.buf, 8, dead as u32);
        let end = self.buf.len();
        for j in i..n - 1 {
            let v = get_u16(self.buf, end - 2 * (j + 2));
            put_u16(self.buf, end - 2 * (j + 1), v);
        }
        put_u16(self.buf, 2, (n - 1) as u16);
    }

    /// Replace the value of entry `i`. Fast path: identical length →
    /// in-place overwrite (the PageRank case: fixed-width vertex values,
    /// §5.2). Otherwise remove + reinsert. Returns `false` if the new value
    /// does not fit.
    pub fn replace_value(&mut self, i: usize, value: &[u8]) -> bool {
        let off = self.as_ref().slot(i);
        let klen = get_u16(self.buf, off) as usize;
        let vlen = get_u16(self.buf, off + 2) as usize;
        if vlen == value.len() {
            let vstart = off + 4 + klen;
            self.buf[vstart..vstart + value.len()].copy_from_slice(value);
            return true;
        }
        let key = self.as_ref().key(i).to_vec();
        self.remove(i);
        if self.insert_at(i, &key, value) {
            true
        } else {
            // Roll back so the caller can split: restore the old entry is
            // impossible (old value bytes are dead), so we signal failure
            // only when the *caller* guaranteed recoverability. The B-tree
            // handles this by copying the entry out before replacing.
            false
        }
    }

    /// Rewrite the page to reclaim dead bytes.
    pub fn compact(&mut self) {
        let n = self.as_ref().len();
        let mut entries = Vec::with_capacity(n);
        for i in 0..n {
            let (k, v) = self.as_ref().entry(i);
            entries.push((k.to_vec(), v.to_vec()));
        }
        let ptype = self.as_ref().page_type().expect("valid page");
        let level = self.as_ref().level();
        let next = self.as_ref().next_page();
        let mut fresh = PageMut::init(self.buf, ptype, level);
        fresh.set_next_page(next);
        for (k, v) in entries {
            let ok = fresh.append(&k, &v);
            debug_assert!(ok, "compaction must not lose entries");
        }
    }

    /// Move the upper half of the entries into `right` (a freshly
    /// initialised page of the same type), returning the first key now in
    /// `right`. Used by B-tree splits.
    pub fn split_into(&mut self, right: &mut PageMut<'_>) -> Vec<u8> {
        let n = self.as_ref().len();
        debug_assert!(n >= 2, "cannot split page with {n} entries");
        let mid = n / 2;
        for i in mid..n {
            let (k, v) = self.as_ref().entry(i);
            let ok = right.append(k, v);
            debug_assert!(ok, "split target must have room");
        }
        for i in (mid..n).rev() {
            self.remove(i);
        }
        self.compact();
        right.as_ref().key(0).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank(size: usize) -> Vec<u8> {
        vec![0u8; size]
    }

    #[test]
    fn init_and_header_fields() {
        let mut buf = blank(256);
        let mut p = PageMut::init(&mut buf, PageType::Leaf, 0);
        p.set_next_page(42);
        let r = p.as_ref();
        assert_eq!(r.page_type().unwrap(), PageType::Leaf);
        assert_eq!(r.level(), 0);
        assert_eq!(r.len(), 0);
        assert_eq!(r.next_page(), 42);
        assert!(r.is_empty());
    }

    #[test]
    fn sorted_inserts_and_search() {
        let mut buf = blank(512);
        let mut p = PageMut::init(&mut buf, PageType::Leaf, 0);
        for k in [5u64, 1, 9, 3, 7] {
            let key = k.to_be_bytes();
            let pos = p.as_ref().search(&key).unwrap_err();
            assert!(p.insert_at(pos, &key, format!("v{k}").as_bytes()));
        }
        let r = p.as_ref();
        assert_eq!(r.len(), 5);
        let keys: Vec<u64> = (0..5)
            .map(|i| u64::from_be_bytes(r.key(i).try_into().unwrap()))
            .collect();
        assert_eq!(keys, vec![1, 3, 5, 7, 9]);
        assert_eq!(r.search(&5u64.to_be_bytes()), Ok(2));
        assert_eq!(r.search(&6u64.to_be_bytes()), Err(3));
        assert_eq!(r.value(2), b"v5");
    }

    #[test]
    fn page_fills_then_rejects() {
        let mut buf = blank(128);
        let mut p = PageMut::init(&mut buf, PageType::Leaf, 0);
        let mut accepted = 0;
        for k in 0..100u64 {
            if !p.append(&k.to_be_bytes(), b"valuedata") {
                break;
            }
            accepted += 1;
        }
        assert!(accepted > 2, "should fit a few entries");
        assert!(accepted < 100, "page must eventually fill");
        assert_eq!(p.as_ref().len(), accepted);
    }

    #[test]
    fn remove_then_compact_reclaims_space() {
        let mut buf = blank(256);
        let mut p = PageMut::init(&mut buf, PageType::Leaf, 0);
        let mut n = 0;
        while p.append(&(n as u64).to_be_bytes(), b"0123456789") {
            n += 1;
        }
        // Remove every other entry, then insertions should succeed again
        // (forcing an internal compaction).
        let mut i = 0;
        while i < p.as_ref().len() {
            p.remove(i);
            i += 1;
        }
        assert!(p.as_ref().dead_bytes() > 0);
        let big_key = (1000u64).to_be_bytes();
        assert!(p.insert_at(p.as_ref().len(), &big_key, b"0123456789"));
    }

    #[test]
    fn replace_value_same_size_in_place() {
        let mut buf = blank(256);
        let mut p = PageMut::init(&mut buf, PageType::Leaf, 0);
        p.append(&1u64.to_be_bytes(), b"aaaa");
        p.append(&2u64.to_be_bytes(), b"bbbb");
        assert!(p.replace_value(0, b"cccc"));
        assert_eq!(p.as_ref().value(0), b"cccc");
        assert_eq!(p.as_ref().value(1), b"bbbb");
        assert_eq!(p.as_ref().dead_bytes(), 0, "same-size replace is in place");
    }

    #[test]
    fn replace_value_different_size() {
        let mut buf = blank(256);
        let mut p = PageMut::init(&mut buf, PageType::Leaf, 0);
        p.append(&1u64.to_be_bytes(), b"aa");
        p.append(&2u64.to_be_bytes(), b"bb");
        assert!(p.replace_value(0, b"longer-value"));
        assert_eq!(p.as_ref().value(0), b"longer-value");
        assert_eq!(p.as_ref().key(0), &1u64.to_be_bytes());
        // Order preserved.
        assert!(p.as_ref().key(0) < p.as_ref().key(1));
    }

    #[test]
    fn split_moves_upper_half() {
        let mut left_buf = blank(512);
        let mut left = PageMut::init(&mut left_buf, PageType::Leaf, 0);
        for k in 0..10u64 {
            assert!(left.append(&k.to_be_bytes(), b"v"));
        }
        let mut right_buf = blank(512);
        let mut right = PageMut::init(&mut right_buf, PageType::Leaf, 0);
        let sep = left.split_into(&mut right);
        assert_eq!(sep, 5u64.to_be_bytes().to_vec());
        assert_eq!(left.as_ref().len(), 5);
        assert_eq!(right.as_ref().len(), 5);
        assert_eq!(right.as_ref().key(0), &5u64.to_be_bytes());
        assert_eq!(left.as_ref().key(4), &4u64.to_be_bytes());
    }

    #[test]
    fn interior_entries_hold_child_pointers() {
        let mut buf = blank(256);
        let mut p = PageMut::init(&mut buf, PageType::Interior, 1);
        p.append(&1u64.to_be_bytes(), &100u64.to_le_bytes());
        p.append(&5u64.to_be_bytes(), &200u64.to_le_bytes());
        let r = p.as_ref();
        assert_eq!(r.page_type().unwrap(), PageType::Interior);
        assert_eq!(r.level(), 1);
        let child = u64::from_le_bytes(r.value(1).try_into().unwrap());
        assert_eq!(child, 200);
    }

    #[test]
    fn corrupt_type_byte_detected() {
        let mut buf = blank(64);
        PageMut::init(&mut buf, PageType::Leaf, 0);
        buf[0] = 99;
        assert!(PageRef::new(&buf).page_type().is_err());
    }
}
