//! Bloom filters for LSM disk components (§5.2 point-lookup path).
//!
//! Every immutable disk component of an [`crate::lsm::LsmBTree`] carries a
//! bloom filter over its keys so that point probes (the left-outer join's
//! per-vid lookups) can skip components that provably do not contain the key
//! instead of paying a root-to-leaf descent per component. The filter is a
//! plain `Vec<u64>` bit set with `k` probe positions derived from two hashes
//! (Kirsch–Mitzenmacher double hashing) — no external dependencies, fully
//! deterministic, and serializable to a flat byte blob that is persisted in
//! the component's own page file as a meta-page sidecar
//! (see [`crate::btree::BTree::write_sidecar`]).

use pregelix_common::error::{PregelixError, Result};

/// Bits reserved per key when sizing a filter. 10 bits/key with the derived
/// `k = 7` probes yields a ~1% false-positive rate, the classic LSM
/// operating point (RocksDB and AsterixDB both default to 10).
pub const BITS_PER_KEY: usize = 10;

/// Magic tag leading a serialized filter blob.
const BLOOM_MAGIC: u32 = 0x424C_4D31; // "BLM1"

/// Serialized header: magic (4) + k (4) + nbits (8).
const BLOOM_HEADER: usize = 16;

/// A fixed-size bloom filter over byte-string keys.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BloomFilter {
    /// Backing bit set, 64 bits per word.
    bits: Vec<u64>,
    /// Number of addressable bits (≤ `bits.len() * 64`).
    nbits: u64,
    /// Probe positions per key.
    k: u32,
}

/// FNV-1a 64-bit hash — the same deterministic, dependency-free hash the
/// chaos digests use for value fingerprints.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 finalizer: decorrelates the second hash from the first so the
/// `h1 + i·h2` probe sequence behaves like `k` independent hashes.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl BloomFilter {
    /// Create a filter sized for `n_keys` keys at [`BITS_PER_KEY`].
    pub fn with_capacity(n_keys: usize) -> Self {
        // ln 2 ≈ 0.693: optimal k for m/n bits per key.
        let k = ((BITS_PER_KEY as f64) * 0.693).round().max(1.0) as u32;
        let nbits = (n_keys.max(1) * BITS_PER_KEY).max(64) as u64;
        let words = nbits.div_ceil(64) as usize;
        BloomFilter {
            bits: vec![0u64; words],
            nbits: words as u64 * 64,
            k,
        }
    }

    /// Number of keys' worth of probe positions set per insert.
    pub fn probes(&self) -> u32 {
        self.k
    }

    /// Size of the backing bit set in bits.
    pub fn nbits(&self) -> u64 {
        self.nbits
    }

    #[inline]
    fn positions(&self, key: &[u8]) -> impl Iterator<Item = u64> + '_ {
        let h1 = fnv1a(key);
        // `| 1` keeps the stride odd so it is coprime with power-of-two-ish
        // bit counts and never degenerates to probing one position.
        let h2 = splitmix64(h1) | 1;
        let nbits = self.nbits;
        (0..self.k as u64).map(move |i| h1.wrapping_add(i.wrapping_mul(h2)) % nbits)
    }

    /// Set the key's probe bits.
    pub fn insert(&mut self, key: &[u8]) {
        let pos: Vec<u64> = self.positions(key).collect();
        for p in pos {
            self.bits[(p / 64) as usize] |= 1u64 << (p % 64);
        }
    }

    /// `false` means the key is definitely absent; `true` means "maybe".
    pub fn contains(&self, key: &[u8]) -> bool {
        self.positions(key)
            .all(|p| self.bits[(p / 64) as usize] & (1u64 << (p % 64)) != 0)
    }

    /// Serialize to a flat blob: magic, k, nbits, then the words LE.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(BLOOM_HEADER + self.bits.len() * 8);
        out.extend_from_slice(&BLOOM_MAGIC.to_le_bytes());
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&self.nbits.to_le_bytes());
        for w in &self.bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Inverse of [`BloomFilter::to_bytes`]; rejects truncated or mistagged
    /// blobs so a torn sidecar write surfaces as corruption, not as a filter
    /// that silently drops keys.
    pub fn from_bytes(buf: &[u8]) -> Result<Self> {
        if buf.len() < BLOOM_HEADER {
            return Err(PregelixError::corrupt("bloom blob shorter than header"));
        }
        let magic = u32::from_le_bytes(buf[0..4].try_into().unwrap());
        if magic != BLOOM_MAGIC {
            return Err(PregelixError::corrupt("bad bloom magic"));
        }
        let k = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        let nbits = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        if k == 0 || nbits == 0 || nbits % 64 != 0 {
            return Err(PregelixError::corrupt("bad bloom geometry"));
        }
        let words = (nbits / 64) as usize;
        if buf.len() != BLOOM_HEADER + words * 8 {
            return Err(PregelixError::corrupt("bloom blob length mismatch"));
        }
        let bits = buf[BLOOM_HEADER..]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok(BloomFilter { bits, nbits, k })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> [u8; 8] {
        i.to_be_bytes()
    }

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_capacity(10_000);
        for i in 0..10_000u64 {
            f.insert(&key(i * 3));
        }
        for i in 0..10_000u64 {
            assert!(f.contains(&key(i * 3)), "false negative for {i}");
        }
    }

    #[test]
    fn false_positive_rate_is_small() {
        let mut f = BloomFilter::with_capacity(10_000);
        for i in 0..10_000u64 {
            f.insert(&key(i));
        }
        let fp = (10_000u64..110_000)
            .filter(|i| f.contains(&key(*i)))
            .count();
        // 10 bits/key, k = 7 → theoretical ~0.8%; allow generous slack.
        assert!(fp < 5_000, "false-positive rate too high: {fp}/100000");
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let f = BloomFilter::with_capacity(100);
        for i in 0..1000u64 {
            assert!(!f.contains(&key(i)));
        }
    }

    #[test]
    fn serialization_roundtrip() {
        let mut f = BloomFilter::with_capacity(500);
        for i in 0..500u64 {
            f.insert(&key(i * 7 + 1));
        }
        let blob = f.to_bytes();
        let g = BloomFilter::from_bytes(&blob).unwrap();
        assert_eq!(f, g);
        for i in 0..500u64 {
            assert!(g.contains(&key(i * 7 + 1)));
        }
    }

    #[test]
    fn from_bytes_rejects_truncation_and_bad_magic() {
        let mut f = BloomFilter::with_capacity(64);
        f.insert(b"abc");
        let blob = f.to_bytes();
        assert!(BloomFilter::from_bytes(&blob[..blob.len() - 1]).is_err());
        assert!(BloomFilter::from_bytes(&blob[..8]).is_err());
        let mut bad = blob.clone();
        bad[0] ^= 0xff;
        assert!(BloomFilter::from_bytes(&bad).is_err());
        let mut short = blob;
        short.truncate(BLOOM_HEADER);
        assert!(BloomFilter::from_bytes(&short).is_err());
    }

    #[test]
    fn variable_length_keys_supported() {
        let mut f = BloomFilter::with_capacity(10);
        f.insert(b"");
        f.insert(b"a");
        f.insert(b"a longer key with some bytes");
        assert!(f.contains(b""));
        assert!(f.contains(b"a"));
        assert!(f.contains(b"a longer key with some bytes"));
    }
}
