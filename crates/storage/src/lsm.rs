//! The LSM B-tree access method.
//!
//! §5.2: "An LSM B-tree index performs well when the size of vertex data is
//! changed drastically from superstep to superstep, or when the algorithm
//! performs frequent graph mutations, e.g., the path merging algorithm in
//! genome assemblers."
//!
//! Structure: one in-memory component (a `BTreeMap` holding live values and
//! tombstones, charged against a budget) plus a stack of immutable on-disk
//! components, each a bulk-loaded [`BTree`]. Updates and deletes go to the
//! in-memory component; when it exceeds its budget it is flushed to a new
//! disk component. When the number of disk components exceeds the merge
//! threshold they are merged into one (a *full* merge, so tombstones can be
//! dropped). Lookups consult newest-to-oldest; scans k-way-merge all
//! components with newest-wins semantics.
//!
//! Disk-component values are tagged: `0` = live value bytes follow, `1` =
//! tombstone.
//!
//! Every disk component carries a [`BloomFilter`] over its keys, built while
//! the component is bulk-loaded and persisted in the component's own file as
//! a meta-page sidecar ([`BTree::write_sidecar`]), so point lookups — and the
//! sorted-probe [`LsmProbeCursor`] — can skip components that provably do
//! not contain the key. Point lookups always stop at the first component
//! (newest first) that stores the key, whether the entry is a live value or
//! a tombstone: older components can only hold shadowed versions.

use crate::bloom::BloomFilter;
use crate::btree::{BTree, BTreeScanner, ProbeCursor};
use crate::cache::BufferCache;
use pregelix_common::error::Result;
use std::collections::BTreeMap;

const LIVE: u8 = 0;
const TOMBSTONE: u8 = 1;

/// An immutable on-disk component: a bulk-loaded B-tree plus the bloom
/// filter over its keys. The filter is `None` only if the component was
/// written by a version without filters (the sidecar is absent).
struct DiskComponent {
    tree: BTree,
    bloom: Option<BloomFilter>,
}

impl DiskComponent {
    /// Bulk-load `entries` (already LSM-encoded, key-sorted) into a fresh
    /// component, building and persisting the bloom filter alongside.
    fn build(cache: &BufferCache, entries: Vec<(Vec<u8>, Vec<u8>)>) -> Result<DiskComponent> {
        let mut bloom = BloomFilter::with_capacity(entries.len());
        for (key, _) in &entries {
            bloom.insert(key);
        }
        let mut tree = BTree::create(cache.clone())?;
        tree.bulk_load(entries, 1.0)?;
        tree.write_sidecar(&bloom.to_bytes())?;
        tree.flush()?;
        Ok(DiskComponent {
            tree,
            bloom: Some(bloom),
        })
    }
}

/// An LSM B-tree bound to a worker's buffer cache.
pub struct LsmBTree {
    cache: BufferCache,
    mem: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    mem_bytes: usize,
    mem_budget: usize,
    /// Disk components, newest last.
    components: Vec<DiskComponent>,
    merge_threshold: usize,
}

impl LsmBTree {
    /// Create an empty LSM tree. `mem_budget` bounds the in-memory
    /// component; `merge_threshold` caps the number of disk components
    /// before a full merge.
    pub fn create(cache: BufferCache, mem_budget: usize, merge_threshold: usize) -> LsmBTree {
        LsmBTree {
            cache,
            mem: BTreeMap::new(),
            mem_bytes: 0,
            mem_budget: mem_budget.max(4096),
            components: Vec::new(),
            merge_threshold: merge_threshold.max(2),
        }
    }

    /// Bulk load key-sorted entries as the initial disk component. The tree
    /// must be empty. This is the graph-load and checkpoint-recovery path
    /// for LSM-backed `Vertex` partitions.
    pub fn bulk_load<I>(&mut self, entries: I) -> Result<()>
    where
        I: IntoIterator<Item = (Vec<u8>, Vec<u8>)>,
    {
        debug_assert!(self.mem.is_empty() && self.components.is_empty());
        let entries: Vec<_> = entries
            .into_iter()
            .map(|(k, v)| (k, encode(Some(&v))))
            .collect();
        let comp = DiskComponent::build(&self.cache, entries)?;
        self.components.push(comp);
        Ok(())
    }

    /// Number of on-disk components (diagnostics / tests).
    pub fn disk_components(&self) -> usize {
        self.components.len()
    }

    /// Bytes held by the in-memory component.
    pub fn mem_bytes(&self) -> usize {
        self.mem_bytes
    }

    fn charge(&mut self, key: &[u8], value: Option<&[u8]>) {
        self.mem_bytes += key.len() + value.map_or(0, |v| v.len()) + 48;
    }

    /// Insert or replace a key.
    pub fn upsert(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.charge(key, Some(value));
        self.mem.insert(key.to_vec(), Some(value.to_vec()));
        self.maybe_flush()
    }

    /// Delete a key (tombstone). Deleting an absent key is a no-op that
    /// still writes a tombstone, matching LSM semantics.
    pub fn delete(&mut self, key: &[u8]) -> Result<()> {
        self.charge(key, None);
        self.mem.insert(key.to_vec(), None);
        self.maybe_flush()
    }

    /// Point lookup across all components, newest first.
    ///
    /// Early exit: the first component that stores the key — whether a live
    /// value or a tombstone — decides the lookup, and older components are
    /// never consulted (they can only hold shadowed versions). Components
    /// whose bloom filter proves the key absent are skipped without a
    /// descent (`bloom_negatives`); a filter that says "maybe" but whose
    /// B-tree lacks the key costs a wasted descent (`bloom_false_positives`).
    pub fn search(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        if let Some(entry) = self.mem.get(key) {
            return Ok(entry.clone());
        }
        let counters = self.cache.counters();
        for comp in self.components.iter().rev() {
            if let Some(bloom) = &comp.bloom {
                if !bloom.contains(key) {
                    counters.add_bloom_negatives(1);
                    continue;
                }
            }
            if let Some(stored) = comp.tree.search(key)? {
                return Ok(decode(&stored)?);
            }
            if comp.bloom.is_some() {
                counters.add_bloom_false_positives(1);
            }
        }
        Ok(None)
    }

    /// Whether `key` currently has a live value.
    pub fn contains(&self, key: &[u8]) -> Result<bool> {
        Ok(self.search(key)?.is_some())
    }

    /// Sorted-probe cursor across all components — the left-outer join's
    /// point access path. Keys must be probed in non-decreasing order.
    pub fn probe_cursor(&self) -> LsmProbeCursor<'_> {
        LsmProbeCursor {
            lsm: self,
            cursors: (0..self.components.len()).map(|_| None).collect(),
        }
    }

    /// Count live entries (full scan).
    pub fn count(&self) -> Result<u64> {
        let mut scan = self.scan()?;
        let mut n = 0;
        while scan.next_entry()?.is_some() {
            n += 1;
        }
        Ok(n)
    }

    fn maybe_flush(&mut self) -> Result<()> {
        if self.mem_bytes > self.mem_budget {
            self.flush_mem()?;
        }
        if self.components.len() > self.merge_threshold {
            self.merge_all()?;
        }
        Ok(())
    }

    /// Flush the in-memory component to a new disk component. Public so
    /// checkpointing can force a flush (§5.5).
    pub fn flush_mem(&mut self) -> Result<()> {
        if self.mem.is_empty() {
            return Ok(());
        }
        let entries: Vec<_> = std::mem::take(&mut self.mem)
            .into_iter()
            .map(|(k, v)| (k, encode(v.as_deref())))
            .collect();
        let comp = DiskComponent::build(&self.cache, entries)?;
        self.mem_bytes = 0;
        self.components.push(comp);
        Ok(())
    }

    /// Merge all disk components into one, dropping tombstones (a full merge
    /// sees every component, so a tombstone can never shadow anything
    /// older than itself).
    pub fn merge_all(&mut self) -> Result<()> {
        if self.components.len() <= 1 {
            return Ok(());
        }
        let old = std::mem::take(&mut self.components);
        let merged_entries = {
            let mut scanners: Vec<BTreeScanner<'_>> = Vec::with_capacity(old.len());
            for c in &old {
                scanners.push(c.tree.scan()?);
            }
            // newest-wins k-way merge; scanner index = age (larger = newer).
            let mut heads: Vec<Option<(Vec<u8>, Vec<u8>)>> = Vec::new();
            for s in &mut scanners {
                heads.push(s.next_entry()?);
            }
            let mut out: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
            loop {
                // Find the minimal key among heads; among equals, the newest
                // component (highest index) wins and the rest are skipped.
                let mut min_key: Option<&[u8]> = None;
                for h in heads.iter().flatten() {
                    match min_key {
                        None => min_key = Some(&h.0),
                        Some(mk) if h.0.as_slice() < mk => min_key = Some(&h.0),
                        _ => {}
                    }
                }
                let Some(min_key) = min_key.map(|k| k.to_vec()) else {
                    break;
                };
                let mut winner: Option<Vec<u8>> = None;
                for (i, h) in heads.iter_mut().enumerate() {
                    if let Some((k, v)) = h {
                        if *k == min_key {
                            winner = Some(std::mem::take(v)); // later i overwrite: newest wins
                            *h = scanners[i].next_entry()?;
                        }
                    }
                }
                let stored = winner.expect("some head matched min key");
                if stored.first() == Some(&LIVE) {
                    out.push((min_key, stored));
                }
            }
            out
        };
        let merged = DiskComponent::build(&self.cache, merged_entries)?;
        for c in old {
            c.tree.destroy()?;
        }
        self.components.push(merged);
        Ok(())
    }

    /// Ordered scan over live entries across all components.
    pub fn scan(&self) -> Result<LsmScanner<'_>> {
        let mut scanners = Vec::with_capacity(self.components.len());
        let mut heads = Vec::with_capacity(self.components.len());
        for c in &self.components {
            let mut s = c.tree.scan()?;
            heads.push(s.next_entry()?);
            scanners.push(s);
        }
        Ok(LsmScanner {
            mem: self.mem.range::<Vec<u8>, _>(..),
            mem_head: None,
            scanners,
            heads,
            primed: false,
        })
    }

    /// Ordered scan over live entries with key `>= from`.
    pub fn scan_from(&self, from: &[u8]) -> Result<LsmScanner<'_>> {
        let mut scanners = Vec::with_capacity(self.components.len());
        let mut heads = Vec::with_capacity(self.components.len());
        for c in &self.components {
            let mut s = c.tree.scan_from(from)?;
            heads.push(s.next_entry()?);
            scanners.push(s);
        }
        Ok(LsmScanner {
            mem: self.mem.range::<Vec<u8>, _>(from.to_vec()..),
            mem_head: None,
            scanners,
            heads,
            primed: false,
        })
    }
}

fn encode(value: Option<&[u8]>) -> Vec<u8> {
    match value {
        Some(v) => {
            let mut out = Vec::with_capacity(1 + v.len());
            out.push(LIVE);
            out.extend_from_slice(v);
            out
        }
        None => vec![TOMBSTONE],
    }
}

fn decode(stored: &[u8]) -> Result<Option<Vec<u8>>> {
    match stored.first() {
        Some(&LIVE) => Ok(Some(stored[1..].to_vec())),
        Some(&TOMBSTONE) => Ok(None),
        _ => Err(pregelix_common::error::PregelixError::corrupt(
            "empty LSM component value",
        )),
    }
}

/// Ordered merged scanner over an [`LsmBTree`]'s live entries.
pub struct LsmScanner<'a> {
    mem: std::collections::btree_map::Range<'a, Vec<u8>, Option<Vec<u8>>>,
    mem_head: Option<(&'a Vec<u8>, &'a Option<Vec<u8>>)>,
    scanners: Vec<BTreeScanner<'a>>,
    heads: Vec<Option<(Vec<u8>, Vec<u8>)>>,
    primed: bool,
}

impl LsmScanner<'_> {
    /// The next live `(key, value)`, or `None` at the end.
    pub fn next_entry(&mut self) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        if !self.primed {
            self.mem_head = self.mem.next();
            self.primed = true;
        }
        loop {
            // Minimum key across mem head and component heads.
            let mut min_key: Option<Vec<u8>> = self.mem_head.map(|(k, _)| k.clone());
            for h in self.heads.iter().flatten() {
                match &min_key {
                    None => min_key = Some(h.0.clone()),
                    Some(mk) if h.0 < *mk => min_key = Some(h.0.clone()),
                    _ => {}
                }
            }
            let Some(min_key) = min_key else {
                return Ok(None);
            };
            // Resolve winner: mem beats disk; among disk, newest (highest
            // index) wins. Advance every source positioned at min_key.
            let mut winner: Option<Option<Vec<u8>>> = None;
            for (i, h) in self.heads.iter_mut().enumerate() {
                if let Some((k, v)) = h {
                    if *k == min_key {
                        winner = Some(decode(v)?);
                        *h = self.scanners[i].next_entry()?;
                    }
                }
            }
            if let Some((k, v)) = self.mem_head {
                if *k == min_key {
                    winner = Some(v.clone());
                    self.mem_head = self.mem.next();
                }
            }
            match winner.expect("some source matched min key") {
                Some(value) => return Ok(Some((min_key, value))),
                None => continue, // tombstoned: skip
            }
        }
    }
}

/// Sorted-probe cursor over an [`LsmBTree`]: the multi-component analogue
/// of [`ProbeCursor`], for monotonically non-decreasing probe keys.
///
/// Each probe consults the in-memory component first, then disk components
/// newest-to-oldest with the same early-exit rule as [`LsmBTree::search`].
/// Components whose bloom filter rejects the key are skipped without being
/// descended (`bloom_negatives`). Each disk component that *is* consulted
/// gets a lazily-created [`ProbeCursor`] that is remembered across probes,
/// so consecutive probes into the same component reuse its pinned leaf
/// instead of re-descending. The per-component cursors each see a
/// subsequence of the (non-decreasing) probe keys, preserving the cursor's
/// monotonicity invariant.
pub struct LsmProbeCursor<'a> {
    lsm: &'a LsmBTree,
    /// Per-disk-component cursors, same order as `lsm.components`; `None`
    /// until the first probe reaches that component.
    cursors: Vec<Option<ProbeCursor<'a>>>,
}

impl LsmProbeCursor<'_> {
    /// Point lookup: the live value under `key`, if any. Equivalent to
    /// [`LsmBTree::search`] for non-decreasing keys.
    pub fn probe(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let lsm = self.lsm;
        if let Some(entry) = lsm.mem.get(key) {
            return Ok(entry.clone());
        }
        let counters = lsm.cache.counters();
        for i in (0..lsm.components.len()).rev() {
            let comp = &lsm.components[i];
            if let Some(bloom) = &comp.bloom {
                if !bloom.contains(key) {
                    counters.add_bloom_negatives(1);
                    continue;
                }
            }
            let cursor = self.cursors[i].get_or_insert_with(|| comp.tree.probe_cursor());
            if let Some(stored) = cursor.probe(key)? {
                return decode(&stored);
            }
            if comp.bloom.is_some() {
                counters.add_bloom_false_positives(1);
            }
        }
        Ok(None)
    }

    /// Whether `key` currently has a live value.
    pub fn probe_contains(&mut self, key: &[u8]) -> Result<bool> {
        Ok(self.probe(key)?.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::BufferCache;
    use crate::file::{FileManager, TempDir};
    use pregelix_common::stats::ClusterCounters;
    use rand::prelude::*;
    use std::collections::BTreeMap as Model;

    fn make(mem_budget: usize) -> (LsmBTree, TempDir) {
        let dir = TempDir::new("lsm").unwrap();
        let fm = FileManager::new(dir.path(), 256, ClusterCounters::new()).unwrap();
        let cache = BufferCache::new(fm, 128);
        (LsmBTree::create(cache, mem_budget, 3), dir)
    }

    fn k(v: u64) -> Vec<u8> {
        v.to_be_bytes().to_vec()
    }

    #[test]
    fn mem_only_upsert_search_delete() {
        let (mut t, _d) = make(1 << 20);
        t.upsert(&k(1), b"a").unwrap();
        t.upsert(&k(2), b"b").unwrap();
        t.upsert(&k(1), b"a2").unwrap();
        assert_eq!(t.search(&k(1)).unwrap().unwrap(), b"a2");
        t.delete(&k(1)).unwrap();
        assert_eq!(t.search(&k(1)).unwrap(), None);
        assert!(t.contains(&k(2)).unwrap());
        assert_eq!(t.disk_components(), 0);
    }

    #[test]
    fn flush_moves_data_to_disk_component() {
        let (mut t, _d) = make(1 << 20);
        for v in 0..100u64 {
            t.upsert(&k(v), &v.to_le_bytes()).unwrap();
        }
        t.flush_mem().unwrap();
        assert_eq!(t.disk_components(), 1);
        assert_eq!(t.mem_bytes(), 0);
        assert_eq!(t.search(&k(42)).unwrap().unwrap(), 42u64.to_le_bytes());
        assert_eq!(t.count().unwrap(), 100);
    }

    #[test]
    fn tombstones_shadow_older_components() {
        let (mut t, _d) = make(1 << 20);
        t.upsert(&k(7), b"old").unwrap();
        t.flush_mem().unwrap();
        t.delete(&k(7)).unwrap();
        t.flush_mem().unwrap();
        assert_eq!(t.disk_components(), 2);
        assert_eq!(t.search(&k(7)).unwrap(), None, "tombstone must shadow");
        assert_eq!(t.count().unwrap(), 0);
        // After a full merge the tombstone is dropped entirely.
        t.merge_all().unwrap();
        assert_eq!(t.disk_components(), 1);
        assert_eq!(t.search(&k(7)).unwrap(), None);
    }

    #[test]
    fn newest_component_wins() {
        let (mut t, _d) = make(1 << 20);
        t.upsert(&k(1), b"v1").unwrap();
        t.flush_mem().unwrap();
        t.upsert(&k(1), b"v2").unwrap();
        t.flush_mem().unwrap();
        t.upsert(&k(1), b"v3").unwrap(); // in mem
        assert_eq!(t.search(&k(1)).unwrap().unwrap(), b"v3");
        let mut scan = t.scan().unwrap();
        let (key, val) = scan.next_entry().unwrap().unwrap();
        assert_eq!(key, k(1));
        assert_eq!(val, b"v3");
        assert!(scan.next_entry().unwrap().is_none());
    }

    #[test]
    fn automatic_flush_and_merge_under_tiny_budget() {
        let (mut t, _d) = make(4096);
        for v in 0..3000u64 {
            t.upsert(&k(v), &[7u8; 16]).unwrap();
        }
        // Budget forces flushes; threshold forces merges.
        assert!(t.disk_components() <= 4, "merges must bound components");
        assert_eq!(t.count().unwrap(), 3000);
        assert_eq!(t.search(&k(2999)).unwrap().unwrap(), vec![7u8; 16]);
    }

    #[test]
    fn scan_is_sorted_and_deduplicated() {
        let (mut t, _d) = make(4096);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let v = rng.gen_range(0..500u64);
            t.upsert(&k(v), &v.to_le_bytes()).unwrap();
        }
        let mut scan = t.scan().unwrap();
        let mut prev: Option<Vec<u8>> = None;
        let mut n = 0;
        while let Some((key, _)) = scan.next_entry().unwrap() {
            if let Some(p) = &prev {
                assert!(*p < key, "scan must be strictly ascending");
            }
            prev = Some(key);
            n += 1;
        }
        assert!(n <= 500);
    }

    /// Satellite regression: a tombstone in a newer component must decide
    /// the lookup without the older components being consulted at all.
    #[test]
    fn tombstone_early_exit_skips_older_components() {
        let (mut t, _d) = make(1 << 20);
        for v in 0..200u64 {
            t.upsert(&k(v), b"old").unwrap();
        }
        t.flush_mem().unwrap();
        t.delete(&k(50)).unwrap();
        t.flush_mem().unwrap();
        assert_eq!(t.disk_components(), 2);
        assert_eq!(t.search(&k(50)).unwrap(), None, "tombstone must shadow");
        // Page-pin accounting proves the early exit: the lookup must cost
        // one descent into the newest (tiny) component, never a second into
        // the older one. Both blooms contain key 50, so a missing early
        // exit would pay both descents.
        let c = t.cache.counters().clone();
        let newest_height = t.components.last().unwrap().tree.height() as u64;
        let older_height = t.components.first().unwrap().tree.height() as u64;
        let before = c.snapshot();
        assert_eq!(t.search(&k(50)).unwrap(), None);
        let d = c.snapshot().delta_since(&before);
        let pins = d.cache_hits + d.cache_misses;
        assert!(
            pins <= newest_height + 1,
            "tombstone lookup must stop at the newest component: \
             {pins} pins (newest height {newest_height}, older height {older_height})"
        );
        assert_eq!(d.bloom_false_positives, 0);
    }

    #[test]
    fn bloom_filters_skip_absent_components() {
        let (mut t, _d) = make(1 << 20);
        // Three disjoint key ranges in three disk components.
        for v in 0..100u64 {
            t.upsert(&k(v), b"c0").unwrap();
        }
        t.flush_mem().unwrap();
        for v in 1000..1100u64 {
            t.upsert(&k(v), b"c1").unwrap();
        }
        t.flush_mem().unwrap();
        for v in 2000..2100u64 {
            t.upsert(&k(v), b"c2").unwrap();
        }
        t.flush_mem().unwrap();
        assert_eq!(t.disk_components(), 3);
        let c = t.cache.counters().clone();
        let before = c.snapshot();
        // Keys in the oldest component: the two newer blooms should reject.
        for v in 0..100u64 {
            assert_eq!(t.search(&k(v)).unwrap().unwrap(), b"c0");
        }
        let d = c.snapshot().delta_since(&before);
        assert!(
            d.bloom_negatives >= 150,
            "newer components should be bloom-skipped: {d:?}"
        );
        // Wholly absent keys are (almost always) rejected by every bloom.
        let before = c.snapshot();
        for v in 5000..5100u64 {
            assert_eq!(t.search(&k(v)).unwrap(), None);
        }
        let d = c.snapshot().delta_since(&before);
        assert!(d.bloom_negatives >= 250, "absent keys should be cheap: {d:?}");
    }

    #[test]
    fn probe_cursor_matches_search_across_components() {
        let (mut t, _d) = make(1 << 20);
        // Overlapping components + mem, with deletes: all resolution rules.
        for v in 0..400u64 {
            t.upsert(&k(v * 2), b"base").unwrap();
        }
        t.flush_mem().unwrap();
        for v in 100..300u64 {
            t.upsert(&k(v * 2), b"mid").unwrap();
        }
        for v in 0..50u64 {
            t.delete(&k(v * 2)).unwrap();
        }
        t.flush_mem().unwrap();
        for v in 200..250u64 {
            t.upsert(&k(v * 2), b"newest").unwrap();
        }
        t.flush_mem().unwrap();
        t.upsert(&k(999), b"in-mem").unwrap();
        assert_eq!(t.disk_components(), 3);
        let mut cursor = t.probe_cursor();
        for probe in 0..1100u64 {
            assert_eq!(
                cursor.probe(&k(probe)).unwrap(),
                t.search(&k(probe)).unwrap(),
                "probe {probe} diverged"
            );
        }
    }

    #[test]
    fn probe_cursor_amortises_descents_and_counts_bloom_skips() {
        let (mut t, _d) = make(1 << 20);
        for v in 0..1000u64 {
            t.upsert(&k(v), &v.to_le_bytes()).unwrap();
        }
        t.flush_mem().unwrap();
        for v in 5000..5100u64 {
            t.upsert(&k(v), b"x").unwrap();
        }
        t.flush_mem().unwrap();
        for v in 6000..6100u64 {
            t.upsert(&k(v), b"y").unwrap();
        }
        t.flush_mem().unwrap();
        assert_eq!(t.disk_components(), 3);
        let c = t.cache.counters().clone();
        let before = c.snapshot();
        let mut cursor = t.probe_cursor();
        for v in 0..1000u64 {
            assert!(cursor.probe(&k(v)).unwrap().is_some());
        }
        let d = c.snapshot().delta_since(&before);
        assert!(d.bloom_negatives > 0, "newer components must be skipped");
        assert!(
            d.probe_redescents <= 10,
            "sorted probes into one component should re-descend rarely: {d:?}"
        );
        assert!(d.probe_leaf_hits > 900, "{d:?}");
    }

    /// The bloom filter is persisted as the component's sidecar and survives
    /// a reopen of the component file.
    #[test]
    fn bloom_persists_with_component() {
        let (mut t, _d) = make(1 << 20);
        for v in 0..500u64 {
            t.upsert(&k(v), b"v").unwrap();
        }
        t.flush_mem().unwrap();
        let comp = t.components.last().unwrap();
        let original = comp.bloom.clone().unwrap();
        let cache = comp.tree.cache().clone();
        let file = comp.tree.file();
        cache.purge_file(file, true).unwrap();
        let reopened = BTree::open(cache, file).unwrap();
        let blob = reopened.read_sidecar().unwrap().expect("sidecar present");
        let restored = BloomFilter::from_bytes(&blob).unwrap();
        assert_eq!(restored, original);
        for v in 0..500u64 {
            assert!(restored.contains(&k(v)));
        }
    }

    #[test]
    fn randomised_against_model_with_mutation_heavy_workload() {
        // This is the genome-assembly access pattern: interleaved inserts
        // and deletes with value sizes that change drastically (§5.2).
        let (mut t, _d) = make(2048);
        let mut model: Model<u64, Vec<u8>> = Model::new();
        let mut rng = StdRng::seed_from_u64(77);
        for step in 0..4000u64 {
            let key = rng.gen_range(0..600u64);
            if rng.gen_bool(0.7) {
                let val = vec![(step % 256) as u8; rng.gen_range(1..64)];
                t.upsert(&k(key), &val).unwrap();
                model.insert(key, val);
            } else {
                t.delete(&k(key)).unwrap();
                model.remove(&key);
            }
        }
        for key in 0..600u64 {
            assert_eq!(
                t.search(&k(key)).unwrap(),
                model.get(&key).cloned(),
                "mismatch at key {key}"
            );
        }
        // Full scan equivalence.
        let mut scan = t.scan().unwrap();
        let mut model_iter = model.iter();
        while let Some((key, val)) = scan.next_entry().unwrap() {
            let (mk, mv) = model_iter.next().expect("model exhausted early");
            assert_eq!(key, k(*mk));
            assert_eq!(&val, mv);
        }
        assert!(model_iter.next().is_none());
    }
}
