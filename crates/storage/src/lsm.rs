//! The LSM B-tree access method.
//!
//! §5.2: "An LSM B-tree index performs well when the size of vertex data is
//! changed drastically from superstep to superstep, or when the algorithm
//! performs frequent graph mutations, e.g., the path merging algorithm in
//! genome assemblers."
//!
//! Structure: one in-memory component (a `BTreeMap` holding live values and
//! tombstones, charged against a budget) plus a stack of immutable on-disk
//! components, each a bulk-loaded [`BTree`]. Updates and deletes go to the
//! in-memory component; when it exceeds its budget it is flushed to a new
//! disk component. When the number of disk components exceeds the merge
//! threshold they are merged into one (a *full* merge, so tombstones can be
//! dropped). Lookups consult newest-to-oldest; scans k-way-merge all
//! components with newest-wins semantics.
//!
//! Disk-component values are tagged: `0` = live value bytes follow, `1` =
//! tombstone.

use crate::btree::{BTree, BTreeScanner};
use crate::cache::BufferCache;
use pregelix_common::error::Result;
use std::collections::BTreeMap;

const LIVE: u8 = 0;
const TOMBSTONE: u8 = 1;

/// An LSM B-tree bound to a worker's buffer cache.
pub struct LsmBTree {
    cache: BufferCache,
    mem: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    mem_bytes: usize,
    mem_budget: usize,
    /// Disk components, newest last.
    components: Vec<BTree>,
    merge_threshold: usize,
}

impl LsmBTree {
    /// Create an empty LSM tree. `mem_budget` bounds the in-memory
    /// component; `merge_threshold` caps the number of disk components
    /// before a full merge.
    pub fn create(cache: BufferCache, mem_budget: usize, merge_threshold: usize) -> LsmBTree {
        LsmBTree {
            cache,
            mem: BTreeMap::new(),
            mem_bytes: 0,
            mem_budget: mem_budget.max(4096),
            components: Vec::new(),
            merge_threshold: merge_threshold.max(2),
        }
    }

    /// Bulk load key-sorted entries as the initial disk component. The tree
    /// must be empty. This is the graph-load and checkpoint-recovery path
    /// for LSM-backed `Vertex` partitions.
    pub fn bulk_load<I>(&mut self, entries: I) -> Result<()>
    where
        I: IntoIterator<Item = (Vec<u8>, Vec<u8>)>,
    {
        debug_assert!(self.mem.is_empty() && self.components.is_empty());
        let mut tree = BTree::create(self.cache.clone())?;
        tree.bulk_load(
            entries.into_iter().map(|(k, v)| (k, encode(Some(&v)))),
            1.0,
        )?;
        tree.flush()?;
        self.components.push(tree);
        Ok(())
    }

    /// Number of on-disk components (diagnostics / tests).
    pub fn disk_components(&self) -> usize {
        self.components.len()
    }

    /// Bytes held by the in-memory component.
    pub fn mem_bytes(&self) -> usize {
        self.mem_bytes
    }

    fn charge(&mut self, key: &[u8], value: Option<&[u8]>) {
        self.mem_bytes += key.len() + value.map_or(0, |v| v.len()) + 48;
    }

    /// Insert or replace a key.
    pub fn upsert(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.charge(key, Some(value));
        self.mem.insert(key.to_vec(), Some(value.to_vec()));
        self.maybe_flush()
    }

    /// Delete a key (tombstone). Deleting an absent key is a no-op that
    /// still writes a tombstone, matching LSM semantics.
    pub fn delete(&mut self, key: &[u8]) -> Result<()> {
        self.charge(key, None);
        self.mem.insert(key.to_vec(), None);
        self.maybe_flush()
    }

    /// Point lookup across all components, newest first.
    pub fn search(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        if let Some(entry) = self.mem.get(key) {
            return Ok(entry.clone());
        }
        for comp in self.components.iter().rev() {
            if let Some(stored) = comp.search(key)? {
                return Ok(decode(&stored)?);
            }
        }
        Ok(None)
    }

    /// Whether `key` currently has a live value.
    pub fn contains(&self, key: &[u8]) -> Result<bool> {
        Ok(self.search(key)?.is_some())
    }

    /// Count live entries (full scan).
    pub fn count(&self) -> Result<u64> {
        let mut scan = self.scan()?;
        let mut n = 0;
        while scan.next_entry()?.is_some() {
            n += 1;
        }
        Ok(n)
    }

    fn maybe_flush(&mut self) -> Result<()> {
        if self.mem_bytes > self.mem_budget {
            self.flush_mem()?;
        }
        if self.components.len() > self.merge_threshold {
            self.merge_all()?;
        }
        Ok(())
    }

    /// Flush the in-memory component to a new disk component. Public so
    /// checkpointing can force a flush (§5.5).
    pub fn flush_mem(&mut self) -> Result<()> {
        if self.mem.is_empty() {
            return Ok(());
        }
        let mut tree = BTree::create(self.cache.clone())?;
        let entries = std::mem::take(&mut self.mem)
            .into_iter()
            .map(|(k, v)| (k, encode(v.as_deref())));
        tree.bulk_load(entries, 1.0)?;
        tree.flush()?;
        self.mem_bytes = 0;
        self.components.push(tree);
        Ok(())
    }

    /// Merge all disk components into one, dropping tombstones (a full merge
    /// sees every component, so a tombstone can never shadow anything
    /// older than itself).
    pub fn merge_all(&mut self) -> Result<()> {
        if self.components.len() <= 1 {
            return Ok(());
        }
        let old = std::mem::take(&mut self.components);
        let merged_entries = {
            let mut scanners: Vec<BTreeScanner<'_>> = Vec::with_capacity(old.len());
            for t in &old {
                scanners.push(t.scan()?);
            }
            // newest-wins k-way merge; scanner index = age (larger = newer).
            let mut heads: Vec<Option<(Vec<u8>, Vec<u8>)>> = Vec::new();
            for s in &mut scanners {
                heads.push(s.next_entry()?);
            }
            let mut out: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
            loop {
                // Find the minimal key among heads; among equals, the newest
                // component (highest index) wins and the rest are skipped.
                let mut min_key: Option<&[u8]> = None;
                for h in heads.iter().flatten() {
                    match min_key {
                        None => min_key = Some(&h.0),
                        Some(mk) if h.0.as_slice() < mk => min_key = Some(&h.0),
                        _ => {}
                    }
                }
                let Some(min_key) = min_key.map(|k| k.to_vec()) else {
                    break;
                };
                let mut winner: Option<Vec<u8>> = None;
                for (i, h) in heads.iter_mut().enumerate() {
                    if let Some((k, v)) = h {
                        if *k == min_key {
                            winner = Some(std::mem::take(v)); // later i overwrite: newest wins
                            *h = scanners[i].next_entry()?;
                        }
                    }
                }
                let stored = winner.expect("some head matched min key");
                if stored.first() == Some(&LIVE) {
                    out.push((min_key, stored));
                }
            }
            out
        };
        let mut merged = BTree::create(self.cache.clone())?;
        merged.bulk_load(merged_entries, 1.0)?;
        merged.flush()?;
        for t in old {
            t.destroy()?;
        }
        self.components.push(merged);
        Ok(())
    }

    /// Ordered scan over live entries across all components.
    pub fn scan(&self) -> Result<LsmScanner<'_>> {
        let mut scanners = Vec::with_capacity(self.components.len());
        let mut heads = Vec::with_capacity(self.components.len());
        for t in &self.components {
            let mut s = t.scan()?;
            heads.push(s.next_entry()?);
            scanners.push(s);
        }
        Ok(LsmScanner {
            mem: self.mem.range::<Vec<u8>, _>(..),
            mem_head: None,
            scanners,
            heads,
            primed: false,
        })
    }

    /// Ordered scan over live entries with key `>= from`.
    pub fn scan_from(&self, from: &[u8]) -> Result<LsmScanner<'_>> {
        let mut scanners = Vec::with_capacity(self.components.len());
        let mut heads = Vec::with_capacity(self.components.len());
        for t in &self.components {
            let mut s = t.scan_from(from)?;
            heads.push(s.next_entry()?);
            scanners.push(s);
        }
        Ok(LsmScanner {
            mem: self.mem.range::<Vec<u8>, _>(from.to_vec()..),
            mem_head: None,
            scanners,
            heads,
            primed: false,
        })
    }
}

fn encode(value: Option<&[u8]>) -> Vec<u8> {
    match value {
        Some(v) => {
            let mut out = Vec::with_capacity(1 + v.len());
            out.push(LIVE);
            out.extend_from_slice(v);
            out
        }
        None => vec![TOMBSTONE],
    }
}

fn decode(stored: &[u8]) -> Result<Option<Vec<u8>>> {
    match stored.first() {
        Some(&LIVE) => Ok(Some(stored[1..].to_vec())),
        Some(&TOMBSTONE) => Ok(None),
        _ => Err(pregelix_common::error::PregelixError::corrupt(
            "empty LSM component value",
        )),
    }
}

/// Ordered merged scanner over an [`LsmBTree`]'s live entries.
pub struct LsmScanner<'a> {
    mem: std::collections::btree_map::Range<'a, Vec<u8>, Option<Vec<u8>>>,
    mem_head: Option<(&'a Vec<u8>, &'a Option<Vec<u8>>)>,
    scanners: Vec<BTreeScanner<'a>>,
    heads: Vec<Option<(Vec<u8>, Vec<u8>)>>,
    primed: bool,
}

impl LsmScanner<'_> {
    /// The next live `(key, value)`, or `None` at the end.
    pub fn next_entry(&mut self) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        if !self.primed {
            self.mem_head = self.mem.next();
            self.primed = true;
        }
        loop {
            // Minimum key across mem head and component heads.
            let mut min_key: Option<Vec<u8>> = self.mem_head.map(|(k, _)| k.clone());
            for h in self.heads.iter().flatten() {
                match &min_key {
                    None => min_key = Some(h.0.clone()),
                    Some(mk) if h.0 < *mk => min_key = Some(h.0.clone()),
                    _ => {}
                }
            }
            let Some(min_key) = min_key else {
                return Ok(None);
            };
            // Resolve winner: mem beats disk; among disk, newest (highest
            // index) wins. Advance every source positioned at min_key.
            let mut winner: Option<Option<Vec<u8>>> = None;
            for (i, h) in self.heads.iter_mut().enumerate() {
                if let Some((k, v)) = h {
                    if *k == min_key {
                        winner = Some(decode(v)?);
                        *h = self.scanners[i].next_entry()?;
                    }
                }
            }
            if let Some((k, v)) = self.mem_head {
                if *k == min_key {
                    winner = Some(v.clone());
                    self.mem_head = self.mem.next();
                }
            }
            match winner.expect("some source matched min key") {
                Some(value) => return Ok(Some((min_key, value))),
                None => continue, // tombstoned: skip
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::BufferCache;
    use crate::file::{FileManager, TempDir};
    use pregelix_common::stats::ClusterCounters;
    use rand::prelude::*;
    use std::collections::BTreeMap as Model;

    fn make(mem_budget: usize) -> (LsmBTree, TempDir) {
        let dir = TempDir::new("lsm").unwrap();
        let fm = FileManager::new(dir.path(), 256, ClusterCounters::new()).unwrap();
        let cache = BufferCache::new(fm, 128);
        (LsmBTree::create(cache, mem_budget, 3), dir)
    }

    fn k(v: u64) -> Vec<u8> {
        v.to_be_bytes().to_vec()
    }

    #[test]
    fn mem_only_upsert_search_delete() {
        let (mut t, _d) = make(1 << 20);
        t.upsert(&k(1), b"a").unwrap();
        t.upsert(&k(2), b"b").unwrap();
        t.upsert(&k(1), b"a2").unwrap();
        assert_eq!(t.search(&k(1)).unwrap().unwrap(), b"a2");
        t.delete(&k(1)).unwrap();
        assert_eq!(t.search(&k(1)).unwrap(), None);
        assert!(t.contains(&k(2)).unwrap());
        assert_eq!(t.disk_components(), 0);
    }

    #[test]
    fn flush_moves_data_to_disk_component() {
        let (mut t, _d) = make(1 << 20);
        for v in 0..100u64 {
            t.upsert(&k(v), &v.to_le_bytes()).unwrap();
        }
        t.flush_mem().unwrap();
        assert_eq!(t.disk_components(), 1);
        assert_eq!(t.mem_bytes(), 0);
        assert_eq!(t.search(&k(42)).unwrap().unwrap(), 42u64.to_le_bytes());
        assert_eq!(t.count().unwrap(), 100);
    }

    #[test]
    fn tombstones_shadow_older_components() {
        let (mut t, _d) = make(1 << 20);
        t.upsert(&k(7), b"old").unwrap();
        t.flush_mem().unwrap();
        t.delete(&k(7)).unwrap();
        t.flush_mem().unwrap();
        assert_eq!(t.disk_components(), 2);
        assert_eq!(t.search(&k(7)).unwrap(), None, "tombstone must shadow");
        assert_eq!(t.count().unwrap(), 0);
        // After a full merge the tombstone is dropped entirely.
        t.merge_all().unwrap();
        assert_eq!(t.disk_components(), 1);
        assert_eq!(t.search(&k(7)).unwrap(), None);
    }

    #[test]
    fn newest_component_wins() {
        let (mut t, _d) = make(1 << 20);
        t.upsert(&k(1), b"v1").unwrap();
        t.flush_mem().unwrap();
        t.upsert(&k(1), b"v2").unwrap();
        t.flush_mem().unwrap();
        t.upsert(&k(1), b"v3").unwrap(); // in mem
        assert_eq!(t.search(&k(1)).unwrap().unwrap(), b"v3");
        let mut scan = t.scan().unwrap();
        let (key, val) = scan.next_entry().unwrap().unwrap();
        assert_eq!(key, k(1));
        assert_eq!(val, b"v3");
        assert!(scan.next_entry().unwrap().is_none());
    }

    #[test]
    fn automatic_flush_and_merge_under_tiny_budget() {
        let (mut t, _d) = make(4096);
        for v in 0..3000u64 {
            t.upsert(&k(v), &[7u8; 16]).unwrap();
        }
        // Budget forces flushes; threshold forces merges.
        assert!(t.disk_components() <= 4, "merges must bound components");
        assert_eq!(t.count().unwrap(), 3000);
        assert_eq!(t.search(&k(2999)).unwrap().unwrap(), vec![7u8; 16]);
    }

    #[test]
    fn scan_is_sorted_and_deduplicated() {
        let (mut t, _d) = make(4096);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let v = rng.gen_range(0..500u64);
            t.upsert(&k(v), &v.to_le_bytes()).unwrap();
        }
        let mut scan = t.scan().unwrap();
        let mut prev: Option<Vec<u8>> = None;
        let mut n = 0;
        while let Some((key, _)) = scan.next_entry().unwrap() {
            if let Some(p) = &prev {
                assert!(*p < key, "scan must be strictly ascending");
            }
            prev = Some(key);
            n += 1;
        }
        assert!(n <= 500);
    }

    #[test]
    fn randomised_against_model_with_mutation_heavy_workload() {
        // This is the genome-assembly access pattern: interleaved inserts
        // and deletes with value sizes that change drastically (§5.2).
        let (mut t, _d) = make(2048);
        let mut model: Model<u64, Vec<u8>> = Model::new();
        let mut rng = StdRng::seed_from_u64(77);
        for step in 0..4000u64 {
            let key = rng.gen_range(0..600u64);
            if rng.gen_bool(0.7) {
                let val = vec![(step % 256) as u8; rng.gen_range(1..64)];
                t.upsert(&k(key), &val).unwrap();
                model.insert(key, val);
            } else {
                t.delete(&k(key)).unwrap();
                model.remove(&key);
            }
        }
        for key in 0..600u64 {
            assert_eq!(
                t.search(&k(key)).unwrap(),
                model.get(&key).cloned(),
                "mismatch at key {key}"
            );
        }
        // Full scan equivalence.
        let mut scan = t.scan().unwrap();
        let mut model_iter = model.iter();
        while let Some((key, val)) = scan.next_entry().unwrap() {
            let (mk, mv) = model_iter.next().expect("model exhausted early");
            assert_eq!(key, k(*mk));
            assert_eq!(&val, mv);
        }
        assert!(model_iter.next().is_none());
    }
}
