//! The Hyracks-style storage library (§4 "Access methods", §5.4).
//!
//! Everything Pregelix stores on a worker machine goes through this crate:
//!
//! * [`mod@file`] — per-worker [`file::FileManager`] owning page-structured files
//!   in a worker-local directory (the simulated machine's local disks).
//! * [`cache`] — the [`cache::BufferCache`]: a fixed budget of page frames
//!   with LRU replacement, pin counts and dirty write-back. This is the
//!   *only* path between access methods and disk, which is what makes the
//!   same physical plan run in-memory when the budget is large and
//!   out-of-core when it is small (§5.4).
//! * [`page`] — the slotted-page layout shared by B-tree leaf and interior
//!   pages.
//! * [`btree`] — a B-tree keyed by arbitrary byte strings (Pregelix keys are
//!   8-byte big-endian vids): bulk load, search, ordered scans, in-place
//!   update, insert with splits, delete.
//! * [`lsm`] — an LSM B-tree: an in-memory component plus immutable on-disk
//!   B-tree components with tombstones and merges, for mutation-heavy
//!   workloads such as the genome-assembly path merging (§5.2).
//! * [`bloom`] — per-disk-component bloom filters so LSM point probes skip
//!   components that provably do not contain the key.
//! * [`radix`] — the tuple-level LSB radix sorter with software
//!   write-combining that orders `(key-prefix, TupleRef)` entry vectors on
//!   the message hot path, with a comparison fallback for small or unkeyed
//!   batches.
//! * [`runfile`] — sequential frame-structured temporary files, used for
//!   sort runs, materialized connector channels, and the `Msg` relation.
//! * [`sort`] — an external sort with bounded memory, optional
//!   aggregation-during-sort (the heart of the sort-based group-by), and a
//!   k-way merge over spilled runs.

pub mod bloom;
pub mod btree;
pub mod cache;
pub mod file;
pub mod lsm;
pub mod page;
pub mod radix;
pub mod runfile;
pub mod sort;

pub use bloom::BloomFilter;
pub use btree::BTree;
pub use cache::BufferCache;
pub use file::{FileId, FileManager};
pub use lsm::LsmBTree;
pub use radix::{SortMode, TupleRadixSorter};
pub use runfile::{RunReader, RunWriter};
pub use sort::ExternalSorter;

/// Default page size in bytes. Small relative to a production system (which
/// would use 4–128 KB pages) so that out-of-core effects appear at megabyte
/// scale, matching the scaled-down cluster simulation.
pub const DEFAULT_PAGE_SIZE: usize = 4096;
