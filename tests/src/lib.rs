//! Host crate for the cross-crate integration tests in `tests/tests/`:
//!
//! * `plan_equivalence` — all sixteen physical plans, every worker/partition
//!   shape, one answer.
//! * `fault_tolerance` — checkpoint/recovery under injected worker failures
//!   (§5.5).
//! * `out_of_core` — in-memory vs spilled runs are bit-identical (§5.4) and
//!   Pregelix survives the baselines' OOM points.
//! * `cross_system_agreement` — Pregelix and all five baseline engines
//!   compute identical answers.
//! * `dfs_io_and_pipelining` — text load/dump through the DFS (§5.2) and
//!   multi-stage pipelined jobs (§5.6).
//! * `mutations` — vertex addition/removal, `resolve` conflicts,
//!   message-created vertices (§2.1, Figure 5).
//! * `property_based` — proptest: random graphs × random plans vs
//!   single-machine references.
