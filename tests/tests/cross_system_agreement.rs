//! Every baseline system and Pregelix must compute the same answers for
//! the three evaluation algorithms — otherwise the figures would compare
//! different computations.

use pregelix::baselines::{all_engines, Algorithm, BaselineConfig};
use pregelix::graphgen::btc;
use pregelix::prelude::*;
use std::sync::Arc;

const CFG: BaselineConfig = BaselineConfig {
    workers: 3,
    worker_ram: 32 << 20,
};

fn pregelix_values<P: pregelix::core::api::VertexProgram<VertexValue = f64>>(
    records: &[(u64, Vec<(u64, f64)>)],
    program: P,
) -> Vec<(u64, f64)> {
    let cluster = Cluster::new(ClusterConfig::new(3, 32 << 20)).unwrap();
    let job = PregelixJob::new("xsys");
    let (_s, graph) =
        run_job_from_records(&cluster, &Arc::new(program), &job, records.to_vec()).unwrap();
    graph
        .collect_vertices::<P>()
        .unwrap()
        .into_iter()
        .map(|v| (v.vid, v.value))
        .collect()
}

#[test]
fn all_systems_agree_on_pagerank() {
    let records = btc::btc(1_000, 6.0, 70);
    let reference = pregelix_values(&records, PageRank::new(5));
    for engine in all_engines() {
        let run = engine
            .run(&records, Algorithm::PageRank { iterations: 5 }, CFG)
            .unwrap_or_else(|e| panic!("{} failed: {e}", engine.name()));
        assert_eq!(run.values.len(), reference.len(), "{}", engine.name());
        for ((v1, r1), (v2, r2)) in reference.iter().zip(run.values.iter()) {
            assert_eq!(v1, v2, "{}", engine.name());
            assert!(
                (r1 - r2).abs() < 1e-9,
                "{}: vid {v1} {r1} vs {r2}",
                engine.name()
            );
        }
    }
}

#[test]
fn all_systems_agree_on_sssp() {
    let records = btc::btc(1_500, 5.0, 71);
    let reference = pregelix_values(&records, ShortestPaths::new(0));
    for engine in all_engines() {
        let run = engine
            .run(&records, Algorithm::Sssp { source: 0 }, CFG)
            .unwrap_or_else(|e| panic!("{} failed: {e}", engine.name()));
        for ((v1, r1), (v2, r2)) in reference.iter().zip(run.values.iter()) {
            assert_eq!(v1, v2, "{}", engine.name());
            // Baselines encode UNREACHED as f64::MAX too.
            assert!(
                (r1 - r2).abs() < 1e-9 || (*r1 == f64::MAX && *r2 == f64::MAX),
                "{}: vid {v1} {r1} vs {r2}",
                engine.name()
            );
        }
    }
}

#[test]
fn all_systems_agree_on_cc() {
    let records = btc::btc(2_000, 2.0, 72); // sparse -> several components
    let reference = pregelix_cc_u64(&records);
    for engine in all_engines() {
        let run = engine
            .run(&records, Algorithm::Cc, CFG)
            .unwrap_or_else(|e| panic!("{} failed: {e}", engine.name()));
        for ((v1, r1), (v2, r2)) in reference.iter().zip(run.values.iter()) {
            assert_eq!(v1, v2, "{}", engine.name());
            assert_eq!(*r1, *r2 as u64, "{}: vid {v1}", engine.name());
        }
    }
}

fn pregelix_cc_u64(records: &[(u64, Vec<(u64, f64)>)]) -> Vec<(u64, u64)> {
    let cluster = Cluster::new(ClusterConfig::new(3, 32 << 20)).unwrap();
    let job = PregelixJob::new("xsys-cc");
    let (_s, graph) =
        run_job_from_records(&cluster, &Arc::new(ConnectedComponents), &job, records.to_vec())
            .unwrap();
    graph
        .collect_vertices::<ConnectedComponents>()
        .unwrap()
        .into_iter()
        .map(|v| (v.vid, v.value))
        .collect()
}

#[test]
fn cc_labels_match_union_find_exactly() {
    let records = btc::btc(800, 2.5, 73);
    let u = pregelix_cc_u64(&records);
    let adjacency: Vec<(u64, Vec<u64>)> = records
        .iter()
        .map(|(v, e)| (*v, e.iter().map(|(d, _)| *d).collect()))
        .collect();
    let expected =
        pregelix::algorithms::connected_components::reference_components(&adjacency);
    for (vid, label) in u {
        assert_eq!(label, expected[&vid]);
    }
}
