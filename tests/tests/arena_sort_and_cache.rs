//! Integration tests for the arena-backed external sorter and the
//! lock-striped buffer cache.
//!
//! The proptest sweep pins down the tentpole's safety argument: the
//! frame-native sorter (pooled arena + sorted `TupleRef`s + lending k-way
//! merge) must be *bit-identical* to a straightforward reference model —
//! sort everything, fold adjacent equal keys — with and without a
//! combiner, across forced-spill budgets, empty inputs, and duplicate-key
//! distributions. The cache tests hammer a striped [`BufferCache`] from 8
//! threads and check the counter invariant that every pin is classified as
//! exactly one hit or one miss.

use pregelix::common::frame::{keyed_tuple, tuple_payload, tuple_vid};
use pregelix::common::stats::ClusterCounters;
use pregelix::storage::cache::BufferCache;
use pregelix::storage::file::{FileManager, TempDir};
use pregelix::storage::sort::{CombineFn, ExternalSorter};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

fn fm(label: &str) -> (FileManager, TempDir) {
    let dir = TempDir::new(label).unwrap();
    let f = FileManager::new(dir.path(), 4096, ClusterCounters::new()).unwrap();
    (f, dir)
}

fn sum_combiner() -> CombineFn {
    Box::new(|a: &[u8], b: &[u8]| {
        let va = u64::from_le_bytes(tuple_payload(a).unwrap().try_into().unwrap());
        let vb = u64::from_le_bytes(tuple_payload(b).unwrap().try_into().unwrap());
        keyed_tuple(tuple_vid(a).unwrap(), &(va + vb).to_le_bytes())
    })
}

/// Reference model: sort owned tuples, fold adjacent equal keys. This is
/// exactly what the pre-arena `Vec<Vec<u8>>` sorter computed.
fn reference(mut tuples: Vec<Vec<u8>>, combine: bool) -> Vec<Vec<u8>> {
    tuples.sort();
    if !combine {
        return tuples;
    }
    let mut comb = sum_combiner();
    let mut out: Vec<Vec<u8>> = Vec::new();
    for t in tuples {
        match out.last_mut() {
            Some(prev) if prev[..8] == t[..8] => {
                let merged = comb(prev, &t);
                *prev = merged;
            }
            _ => out.push(t),
        }
    }
    out
}

fn run_sorter_case(
    tuples: &[Vec<u8>],
    budget: usize,
    combine: bool,
    label: &str,
) -> (Vec<Vec<u8>>, u64, u64, usize) {
    let (f, _d) = fm(label);
    let counters = f.counters().clone();
    let mut s = ExternalSorter::new(f, label, budget);
    if combine {
        s = s.with_combiner(sum_combiner());
    }
    for t in tuples {
        s.add(t).unwrap();
    }
    let spilled_runs = s.spilled_runs();
    let got = s.finish().unwrap().collect_all().unwrap();
    (
        got,
        counters.sort_bytes_spilled(),
        counters.arena_frames_allocated(),
        spilled_runs,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The arena sorter is bit-identical to the reference model for every
    /// (input, budget, combiner) combination, including budgets small
    /// enough to force many spilled runs.
    #[test]
    fn prop_arena_sorter_matches_reference(
        seed in 0u64..10_000,
        n in 0usize..4_000,
        key_space in 1u64..2_000,
        budget in prop_oneof![Just(2_048usize), Just(16 << 10), Just(1 << 20)],
        combine in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tuples: Vec<Vec<u8>> = (0..n)
            .map(|_| keyed_tuple(rng.gen_range(0..key_space), &1u64.to_le_bytes()))
            .collect();
        let (got, bytes_spilled, _, spilled_runs) =
            run_sorter_case(&tuples, budget, combine, "prop-sort");
        let expect = reference(tuples, combine);
        prop_assert_eq!(got, expect);
        // Spill-volume accounting fires exactly when runs were written.
        prop_assert_eq!(spilled_runs > 0, bytes_spilled > 0);
    }
}

#[test]
fn duplicate_keys_without_combiner_keep_multiplicity() {
    // Every tuple has the same vid; without a combiner all copies must
    // survive in order, with a combiner they collapse to one.
    let tuples: Vec<Vec<u8>> = (0..5_000u64)
        .map(|i| keyed_tuple(7, &(i % 3).to_le_bytes()))
        .collect();
    let (plain, ..) = run_sorter_case(&tuples, 2_048, false, "dup-plain");
    assert_eq!(plain, reference(tuples.clone(), false));
    assert_eq!(plain.len(), 5_000);
    let (combined, ..) = run_sorter_case(&tuples, 2_048, true, "dup-comb");
    assert_eq!(combined.len(), 1);
    assert_eq!(combined, reference(tuples, true));
}

#[test]
fn arena_allocations_stay_bounded_by_budget() {
    // 500k tuples through a 1 MiB budget: the arena must recycle its
    // pooled chunks across spills instead of allocating per tuple (or
    // even per spill).
    let tuples: Vec<Vec<u8>> = (0..500_000u64)
        .map(|i| keyed_tuple(i % 4_096, &1u64.to_le_bytes()))
        .collect();
    let (got, bytes_spilled, frames, spilled_runs) =
        run_sorter_case(&tuples, 1 << 20, true, "alloc-bound");
    assert!(spilled_runs > 3, "budget must force spills");
    assert!(bytes_spilled > 0);
    assert_eq!(got.len(), 4_096);
    // 1 MiB budget / 256 KiB chunks = 4 chunks in flight; the combiner
    // pre-pass adds a handful more. Anything near the tuple count means
    // pooling is broken.
    assert!(
        frames <= 16,
        "expected O(budget/chunk_size) arena allocations, got {frames}"
    );
}

#[test]
fn striped_cache_concurrent_pins_keep_counter_invariant() {
    const THREADS: u64 = 8;
    const PINS_PER_THREAD: u64 = 4_000;
    const PAGES: u64 = 128;

    let (f, _d) = fm("stripe-hammer");
    let counters = f.counters().clone();
    let cache = BufferCache::with_stripes(f.clone(), 64, 8);
    assert_eq!(cache.stripe_count(), 8);
    let file = f.create().unwrap();
    // Materialize PAGES pages, each stamped with a recognizable byte.
    for p in 0..PAGES {
        let (pid, guard) = cache.new_page(file).unwrap();
        assert_eq!(pid, p);
        guard.write()[0] = (p % 251) as u8;
    }
    cache.flush_file(file).unwrap();
    let before = counters.snapshot();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let cache = cache.clone();
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(t + 1);
                for _ in 0..PINS_PER_THREAD {
                    let p = rng.gen_range(0..PAGES);
                    let guard = cache.pin(file, p).unwrap();
                    // Pinned data is always the page we asked for, no
                    // matter which stripe it lives in or who else is
                    // evicting.
                    assert_eq!(guard.read()[0], (p % 251) as u8, "page {p}");
                }
            });
        }
    });

    let delta = counters.delta_since(&before);
    assert_eq!(
        delta.cache_hits + delta.cache_misses,
        THREADS * PINS_PER_THREAD,
        "every pin must count exactly one hit or one miss"
    );
    // 128 hot pages through a 64-page cache: both hits and misses occur.
    assert!(delta.cache_hits > 0);
    assert!(delta.cache_misses > 0);
    assert!(cache.resident() <= 64, "budget respected across stripes");
}

#[test]
fn striped_cache_dirty_pages_survive_concurrent_eviction_pressure() {
    const THREADS: u64 = 4;
    const PAGES_PER_THREAD: u64 = 64;

    let (f, _d) = fm("stripe-dirty");
    // Tiny cache (16 pages, 8 stripes) so almost every write is evicted
    // and re-read through disk.
    let cache = BufferCache::with_stripes(f.clone(), 16, 8);
    let file = f.create().unwrap();
    for _ in 0..THREADS * PAGES_PER_THREAD {
        let (_pid, guard) = cache.new_page(file).unwrap();
        guard.write()[0] = 0;
    }
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let cache = cache.clone();
            s.spawn(move || {
                for i in 0..PAGES_PER_THREAD {
                    let p = t * PAGES_PER_THREAD + i;
                    let guard = cache.pin(file, p).unwrap();
                    let mut data = guard.write();
                    data[0] = (t + 1) as u8;
                    data[1] = (p % 250) as u8;
                }
            });
        }
    });
    // Everything written is readable back, via cache or disk.
    for t in 0..THREADS {
        for i in 0..PAGES_PER_THREAD {
            let p = t * PAGES_PER_THREAD + i;
            let guard = cache.pin(file, p).unwrap();
            let data = guard.read();
            assert_eq!((data[0], data[1]), ((t + 1) as u8, (p % 250) as u8));
        }
    }
}
