//! Multi-tenant job service differential suite.
//!
//! The tentpole property: concurrent execution through [`JobService`] is
//! **bit-identical per job** to running each job alone. The service
//! serializes superstep windows across tenants (cooperative round-robin
//! quanta), so interleaving changes *when* a job's supersteps run, never
//! *what* they compute — per-job values, superstep counts, final global
//! states, and the interleaving-invariant counters in
//! [`JobSummary::job_stats`] must all match a serial run exactly, with or
//! without injected faults, and regardless of the fair-share sticky
//! rotation each tenant gets.
//!
//! Admission is exercised both directly (queueing past the page budget,
//! exact accounting back to zero) and property-based (random budgets and
//! tenant counts never deadlock or leak pages).
//!
//! Every test holds [`fault::exclusive`] — this suite runs whole jobs, and
//! a concurrently installed fault plan from another test would otherwise
//! bleed into them. With `CHAOS_DIGEST` set, the mixed-tenant scenario
//! appends one line per job built only from per-job counters and value
//! hashes; CI runs the suite twice and diffs the digests.

use pregelix::common::error::Result;
use pregelix::common::fault::{self, Fault, FaultPlan, Site};
use pregelix::core::api::{ComputeContext, VertexProgram};
use pregelix::graphgen;
use pregelix::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Graphs and programs
// ---------------------------------------------------------------------------

/// A chain component `start — start+1 — … — start+len-1` (symmetric edges).
fn chain(start: u64, len: u64) -> Vec<(u64, Vec<(u64, f64)>)> {
    (0..len)
        .map(|i| {
            let vid = start + i;
            let mut edges = Vec::new();
            if i > 0 {
                edges.push((vid - 1, 1.0));
            }
            if i + 1 < len {
                edges.push((vid + 1, 1.0));
            }
            (vid, edges)
        })
        .collect()
}

fn two_chains() -> Vec<(u64, Vec<(u64, f64)>)> {
    let mut records = chain(0, 8);
    records.extend(chain(100, 6));
    records
}

/// Superstep 1: even vertices insert a shadow vertex (vid + 1000) and odd
/// vertices delete themselves; superstep 2: everyone halts. Exercises the
/// mutation flow (insert/delete dataflow of Figure 5) under concurrency.
struct Mutator;

impl VertexProgram for Mutator {
    type VertexValue = u64;
    type EdgeValue = ();
    type Message = u64;
    type Aggregate = ();

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<()> {
        if ctx.superstep() == 1 {
            if ctx.vid() % 2 == 0 {
                ctx.add_vertex(VertexData::new(ctx.vid() + 1000, ctx.vid(), vec![]));
            } else {
                ctx.delete_vertex(ctx.vid());
            }
        }
        ctx.vote_to_halt();
        Ok(())
    }

    fn init_vertex(&self, vid: u64, edges: Vec<(u64, f64)>) -> VertexData<Self> {
        VertexData::new(
            vid,
            vid,
            edges.into_iter().map(|(d, _)| Edge::new(d, ())).collect(),
        )
    }
}

// ---------------------------------------------------------------------------
// Differential harness
// ---------------------------------------------------------------------------

/// Everything we compare per job between serial and concurrent execution.
/// `values` are the formatted vertex lines out of the finished job's
/// resident store — formatting is deterministic, so string equality is
/// value bit-equality.
#[derive(Debug)]
struct JobOutcome {
    tag: String,
    supersteps: u64,
    recoveries: u32,
    halt: bool,
    values: Vec<(u64, String)>,
    job_compute: u64,
    job_sent: u64,
    job_combined: u64,
}

impl JobOutcome {
    fn of(handle: &JobHandle<'_>, summary: &JobSummary) -> JobOutcome {
        JobOutcome {
            tag: summary.name.clone(),
            supersteps: summary.supersteps,
            recoveries: summary.recoveries,
            halt: summary.final_gs.halt,
            values: handle.query_range(0, u64::MAX).unwrap(),
            job_compute: summary.job_stats.compute_calls,
            job_sent: summary.job_stats.messages_sent,
            job_combined: summary.job_stats.messages_combined,
        }
    }

    fn assert_matches(&self, other: &JobOutcome) {
        assert_eq!(self.tag, other.tag);
        assert_eq!(
            self.supersteps, other.supersteps,
            "superstep count diverged for {}",
            self.tag
        );
        assert_eq!(
            self.recoveries, other.recoveries,
            "recovery count diverged for {}",
            self.tag
        );
        assert_eq!(self.halt, other.halt, "final GS halt diverged for {}", self.tag);
        assert_eq!(
            self.values, other.values,
            "vertex values diverged for {}",
            self.tag
        );
        assert_eq!(
            (self.job_compute, self.job_sent, self.job_combined),
            (other.job_compute, other.job_sent, other.job_combined),
            "per-job counters diverged for {}",
            self.tag
        );
    }
}

/// FNV-1a over the formatted value relation (chaos-digest unit).
fn values_hash(values: &[(u64, String)]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for (vid, line) in values {
        for b in vid.to_le_bytes().iter().chain(line.as_bytes()) {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Append one line per job to `$CHAOS_DIGEST`: per-job counters and value
/// hashes only — exactly the attribution multi-tenant runs must keep
/// deterministic.
fn chaos_digest(scenario: &str, outcome: &JobOutcome) {
    let Ok(path) = std::env::var("CHAOS_DIGEST") else {
        return;
    };
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .unwrap();
    writeln!(
        f,
        "{scenario}:{} supersteps={} recoveries={} jcmp={} jmsgs={} jcomb={} values={:016x}",
        outcome.tag,
        outcome.supersteps,
        outcome.recoveries,
        outcome.job_compute,
        outcome.job_sent,
        outcome.job_combined,
        values_hash(&outcome.values),
    )
    .unwrap();
}

const WORKERS: usize = 3;
const RAM: usize = 8 << 20;

fn fresh_cluster() -> Cluster {
    Cluster::new(ClusterConfig::new(WORKERS, RAM)).unwrap()
}

/// The mixed tenant mix: (name, input records, job extras are applied by
/// the closure) — 8 jobs across 4 program types, including mutation.
fn mixed_inputs() -> Vec<(&'static str, Vec<(u64, Vec<(u64, f64)>)>)> {
    vec![
        ("svc-cc-a", two_chains()),
        ("svc-pr-a", graphgen::webmap::webmap(6, 4.0, 11)),
        ("svc-sssp-a", chain(0, 8)),
        ("svc-mut-a", (0..10).map(|v| (v, vec![])).collect()),
        ("svc-cc-b", chain(50, 6)),
        ("svc-pr-b", chain(0, 12)),
        ("svc-sssp-b", chain(200, 7)),
        ("svc-cc-c", chain(0, 8)),
    ]
}

fn stage_inputs(cluster: &Cluster, inputs: &[(&str, Vec<(u64, Vec<(u64, f64)>)>)]) {
    for (name, records) in inputs {
        graphgen::text::write_to_dfs(cluster.dfs(), &format!("in/{name}"), records).unwrap();
    }
}

fn mixed_job(name: &str) -> PregelixJob {
    let mut job = PregelixJob::new(name)
        .with_io(format!("in/{name}"), format!("out/{name}"))
        .with_page_budget(64);
    // One tenant exercises the checkpoint ladder under concurrency.
    if name == "svc-cc-c" {
        job = job.with_checkpoint_interval(2);
    }
    job
}

/// Submit the named job to `service` with the program matching its name
/// prefix; returns the handle.
fn submit_mixed<'c>(service: &JobService<'c>, name: &str) -> JobHandle<'c> {
    let job = mixed_job(name);
    if name.starts_with("svc-cc") {
        service.submit(Arc::new(ConnectedComponents), job).unwrap()
    } else if name.starts_with("svc-pr") {
        service.submit(Arc::new(PageRank::new(4)), job).unwrap()
    } else if name.starts_with("svc-sssp") {
        let source = if name.ends_with('b') { 200 } else { 0 };
        service
            .submit(Arc::new(ShortestPaths::new(source)), job)
            .unwrap()
    } else {
        service.submit(Arc::new(Mutator), job).unwrap()
    }
}

/// Run one mixed job alone: fresh cluster, fresh single-tenant service.
fn serial_outcome(name: &str, inputs: &[(&str, Vec<(u64, Vec<(u64, f64)>)>)]) -> JobOutcome {
    let cluster = fresh_cluster();
    stage_inputs(&cluster, inputs);
    let service = JobService::new(&cluster, ServiceConfig::default());
    let handle = submit_mixed(&service, name);
    let summary = handle.wait().unwrap();
    JobOutcome::of(&handle, &summary)
}

// ---------------------------------------------------------------------------
// The tentpole differential: 8 concurrent mixed jobs == 8 serial jobs
// ---------------------------------------------------------------------------

#[test]
fn concurrent_mixed_jobs_bit_identical_to_serial() {
    let _guard = fault::exclusive();
    let inputs = mixed_inputs();

    // Serial references: each job alone on its own cluster (sticky offset
    // 0, nothing else admitted).
    let serial: Vec<JobOutcome> = inputs
        .iter()
        .map(|(name, _)| serial_outcome(name, &inputs))
        .collect();

    // Concurrent: all 8 through one service over one shared cluster. The
    // k-th submission runs with sticky offset k (fair_spread), so
    // placement differs from serial on purpose — results must not.
    let cluster = fresh_cluster();
    stage_inputs(&cluster, &inputs);
    let service = JobService::new(&cluster, ServiceConfig::default());
    let handles: Vec<JobHandle<'_>> = inputs
        .iter()
        .map(|(name, _)| submit_mixed(&service, name))
        .collect();
    let concurrent: Vec<JobOutcome> = handles
        .iter()
        .map(|h| {
            let summary = h.wait().unwrap();
            JobOutcome::of(h, &summary)
        })
        .collect();

    for (s, c) in serial.iter().zip(&concurrent) {
        s.assert_matches(c);
        assert!(c.job_compute > 0, "{} attributed no compute work", c.tag);
        chaos_digest("svc-mixed", c);
    }
    // Admission accounting: every page reserved was released.
    assert_eq!(service.pages_used(), 0);
    assert_eq!(service.pages_high_water(), 8 * 64);
    // Per-job attribution sums to less than the shared-cluster totals
    // would suggest double counting; each tenant's scope saw only its own
    // messages.
    let total_sent: u64 = concurrent.iter().map(|c| c.job_sent).sum();
    let cluster_sent = cluster.counters().snapshot().messages_sent;
    assert_eq!(total_sent, cluster_sent);
}

// ---------------------------------------------------------------------------
// Faults stay scoped to the tenant they target
// ---------------------------------------------------------------------------

#[test]
fn faulted_tenant_recovers_without_disturbing_neighbors() {
    let guard = fault::exclusive();
    let inputs: Vec<(&str, Vec<(u64, Vec<(u64, f64)>)>)> = vec![
        ("svcf-a", chain(0, 8)),
        ("svcf-b", two_chains()),
        ("svcf-c", chain(50, 6)),
    ];
    let job_for = |name: &str| {
        let mut job = PregelixJob::new(name)
            .with_io(format!("in/{name}"), format!("out/{name}"))
            .with_page_budget(64);
        if name == "svcf-b" {
            // The faulted tenant checkpoints every superstep so the
            // injected failure recovers instead of aborting.
            job = job.with_checkpoint_interval(1);
        }
        job
    };
    // Injected I/O error in svcf-b's superstep-3 message task, partition
    // 0. The fault context carries the job tag, so only svcf-b can consume
    // it — in the serial phase and the concurrent phase alike.
    let plan = || {
        FaultPlan::new().on(Site::Stall, "svcf-b:s3:p0", 1, Fault::IoError)
    };

    // Serial: each job alone, plan armed (only svcf-b trips it).
    guard.install(plan());
    let serial: Vec<JobOutcome> = inputs
        .iter()
        .map(|(name, _)| {
            let cluster = fresh_cluster();
            stage_inputs(&cluster, &inputs);
            let service = JobService::new(&cluster, ServiceConfig::default());
            let handle = service
                .submit(Arc::new(ConnectedComponents), job_for(name))
                .unwrap();
            let summary = handle.wait().unwrap();
            JobOutcome::of(&handle, &summary)
        })
        .collect();

    // Concurrent: same three tenants, same plan re-armed.
    guard.install(plan());
    let cluster = fresh_cluster();
    stage_inputs(&cluster, &inputs);
    let service = JobService::new(&cluster, ServiceConfig::default());
    let handles: Vec<JobHandle<'_>> = inputs
        .iter()
        .map(|(name, _)| {
            service
                .submit(Arc::new(ConnectedComponents), job_for(name))
                .unwrap()
        })
        .collect();
    let concurrent: Vec<JobOutcome> = handles
        .iter()
        .map(|h| {
            let summary = h.wait().unwrap();
            JobOutcome::of(h, &summary)
        })
        .collect();

    for (s, c) in serial.iter().zip(&concurrent) {
        s.assert_matches(c);
        chaos_digest("svc-faulted", c);
    }
    // The fault hit exactly the tenant it named, in both phases.
    assert_eq!(serial[1].recoveries, 1);
    assert_eq!(concurrent[1].recoveries, 1);
    assert_eq!(concurrent[0].recoveries, 0);
    assert_eq!(concurrent[2].recoveries, 0);
}

// ---------------------------------------------------------------------------
// Admission: queueing, accounting, rejection
// ---------------------------------------------------------------------------

#[test]
fn over_budget_submissions_queue_and_complete() {
    let _guard = fault::exclusive();
    let cluster = fresh_cluster();
    let records = chain(0, 6);
    graphgen::text::write_to_dfs(cluster.dfs(), "in/q", &records).unwrap();
    // Budget fits two tenants at a time; five are submitted.
    let service = JobService::new(
        &cluster,
        ServiceConfig {
            total_pages: 256,
            default_job_pages: 128,
            fair_spread: true,
        },
    );
    let handles: Vec<JobHandle<'_>> = (0..5)
        .map(|i| {
            service
                .submit(
                    Arc::new(ConnectedComponents),
                    PregelixJob::new(format!("q{i}")).with_io("in/q", format!("out/q{i}")),
                )
                .unwrap()
        })
        .collect();
    // The first two were admitted at submit; the rest queue.
    assert_eq!(service.pages_used(), 256);
    assert_eq!(handles[4].status(), JobStatus::Queued);
    for h in &handles {
        let summary = h.wait().unwrap();
        assert_eq!(summary.supersteps, 7);
        assert!(summary.final_gs.halt);
    }
    assert_eq!(service.pages_used(), 0);
    // Never over budget, and the queue genuinely bounded concurrency.
    assert!(service.pages_high_water() <= 256);

    // A reservation larger than the whole service can never admit: reject
    // at submit instead of deadlocking the queue.
    let err = service
        .submit(
            Arc::new(ConnectedComponents),
            PregelixJob::new("too-big")
                .with_io("in/q", "out/too-big")
                .with_page_budget(257),
        )
        .map(|_| ())
        .unwrap_err();
    assert!(err.to_string().contains("257"), "unexpected error: {err}");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Random tenant counts and page budgets: everything admitted
    /// completes, nothing deadlocks, and the accountant returns to zero
    /// with a high-water mark within budget.
    #[test]
    fn prop_admission_never_deadlocks_or_leaks(
        total in 64usize..512,
        budgets in proptest::collection::vec(1u64..96, 1..6),
    ) {
        let _guard = fault::exclusive();
        let cluster = Cluster::new(ClusterConfig::new(2, RAM)).unwrap();
        let records = chain(0, 4);
        graphgen::text::write_to_dfs(cluster.dfs(), "in/p", &records).unwrap();
        let service = JobService::new(
            &cluster,
            ServiceConfig { total_pages: total, default_job_pages: 16, fair_spread: true },
        );
        let mut handles = Vec::new();
        for (i, pages) in budgets.iter().enumerate() {
            let job = PregelixJob::new(format!("p{i}"))
                .with_io("in/p", format!("out/p{i}"))
                .with_page_budget(*pages);
            match service.submit(Arc::new(ConnectedComponents), job) {
                Ok(h) => handles.push(h),
                Err(e) => {
                    // Only a reservation beyond the whole budget is refused.
                    prop_assert!(*pages as usize > total, "spurious rejection: {e}");
                }
            }
        }
        for h in &handles {
            let summary = h.wait().unwrap();
            prop_assert_eq!(summary.supersteps, 5);
        }
        prop_assert_eq!(service.pages_used(), 0);
        prop_assert!(service.pages_high_water() <= total);
    }
}

// ---------------------------------------------------------------------------
// Cancel, status, queries, name collisions
// ---------------------------------------------------------------------------

#[test]
fn cancel_releases_budget_and_reports_cancelled() {
    let _guard = fault::exclusive();
    let cluster = fresh_cluster();
    let records = chain(0, 8);
    graphgen::text::write_to_dfs(cluster.dfs(), "in/c", &records).unwrap();
    let service = JobService::new(&cluster, ServiceConfig::default());
    let keep = service
        .submit(
            Arc::new(ConnectedComponents),
            PregelixJob::new("c-keep").with_io("in/c", "out/c-keep"),
        )
        .unwrap();
    let drop_it = service
        .submit(
            Arc::new(ConnectedComponents),
            PregelixJob::new("c-drop").with_io("in/c", "out/c-drop"),
        )
        .unwrap();
    let reserved = service.pages_used();
    drop_it.cancel().unwrap();
    assert_eq!(drop_it.status(), JobStatus::Cancelled);
    assert!(service.pages_used() < reserved, "cancel must release pages");
    // Cancelling again is a no-op.
    drop_it.cancel().unwrap();
    // The cancelled tenant reports Cancelled on wait; the survivor is
    // untouched.
    let err = drop_it.wait().map(|_| ()).unwrap_err();
    assert!(matches!(err, pregelix::common::error::PregelixError::Cancelled(ref j) if j == "c-drop"));
    let summary = keep.wait().unwrap();
    assert_eq!(summary.supersteps, 9);
    assert_eq!(service.pages_used(), 0);
}

#[test]
fn queries_serve_point_and_range_reads_after_done() {
    let _guard = fault::exclusive();
    let cluster = fresh_cluster();
    let records = two_chains();
    graphgen::text::write_to_dfs(cluster.dfs(), "in/query", &records).unwrap();
    let service = JobService::new(&cluster, ServiceConfig::default());
    let handle = service
        .submit(
            Arc::new(ConnectedComponents),
            PregelixJob::new("query").with_io("in/query", "out/query"),
        )
        .unwrap();
    // Not finished yet: queries refuse rather than serve stale state.
    assert!(handle.query_vertex(0).is_err());
    let summary = handle.wait().unwrap();
    assert_eq!(handle.status(), JobStatus::Done);
    assert!(summary.final_gs.halt);

    // Point probes: chain 0..8 collapses to component 0, chain 100..106 to
    // component 100; formatting comes from the program.
    let line = handle.query_vertex(5).unwrap().unwrap();
    assert_eq!(line, "5\t0");
    let line = handle.query_vertex(103).unwrap().unwrap();
    assert_eq!(line, "103\t100");
    assert_eq!(handle.query_vertex(999).unwrap(), None);

    // Range read across the partition split, ascending and exact.
    let range = handle.query_range(4, 102).unwrap();
    let vids: Vec<u64> = range.iter().map(|(v, _)| *v).collect();
    assert_eq!(vids, vec![4, 5, 6, 7, 100, 101, 102]);
    for (vid, line) in &range {
        let expected = if *vid < 100 { 0 } else { 100 };
        assert_eq!(*line, format!("{vid}\t{expected}"));
    }
}

#[test]
fn reused_names_get_disjoint_instances() {
    let _guard = fault::exclusive();
    let cluster = fresh_cluster();
    let records = chain(0, 6);
    graphgen::text::write_to_dfs(cluster.dfs(), "in/dup", &records).unwrap();
    let service = JobService::new(&cluster, ServiceConfig::default());
    let first = service
        .submit(
            Arc::new(ConnectedComponents),
            PregelixJob::new("dup").with_io("in/dup", "out/dup-0"),
        )
        .unwrap();
    let second = service
        .submit(
            Arc::new(ConnectedComponents),
            PregelixJob::new("dup").with_io("in/dup", "out/dup-1"),
        )
        .unwrap();
    // First keeps the bare-name identity (and therefore the historical
    // DFS layout); the second is disambiguated.
    assert_eq!(first.id().tag(), "dup");
    assert_eq!(second.id().tag(), "dup.1");
    let a = first.wait().unwrap();
    let b = second.wait().unwrap();
    assert_eq!(a.supersteps, b.supersteps);
    assert_eq!(
        first.query_range(0, u64::MAX).unwrap(),
        second.query_range(0, u64::MAX).unwrap()
    );
    // Summaries carry the instance-suffixed tag for attribution.
    assert_eq!(a.name, "dup");
    assert_eq!(b.name, "dup.1");
}

#[test]
fn pipeline_submission_matches_run_pipeline_and_cleans_up() {
    let _guard = fault::exclusive();
    let records = two_chains();

    // Through the service.
    let cluster = fresh_cluster();
    graphgen::text::write_to_dfs(cluster.dfs(), "in/pipe", &records).unwrap();
    let service = JobService::new(&cluster, ServiceConfig::default());
    let stages: Vec<Arc<ConnectedComponents>> =
        (0..2).map(|_| Arc::new(ConnectedComponents)).collect();
    let job = PregelixJob::new("pipe")
        .with_io("in/pipe", "out/pipe")
        .with_checkpoint_interval(2);
    let handle = service.submit_pipeline(stages.clone(), job.clone()).unwrap();
    let summaries = handle.wait_all().unwrap();
    assert_eq!(summaries.len(), 2);
    assert_eq!(summaries[0].name, "pipe-stage0");
    assert_eq!(summaries[1].name, "pipe-stage1");

    // Through the wrapper: identical per-stage results.
    let cluster2 = fresh_cluster();
    graphgen::text::write_to_dfs(cluster2.dfs(), "in/pipe", &records).unwrap();
    let wrapped = run_pipeline(&cluster2, &stages, &job).unwrap();
    for (a, b) in summaries.iter().zip(&wrapped) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.supersteps, b.supersteps);
        assert_eq!(a.final_gs, b.final_gs);
    }

    // Success teardown cleared every stage's checkpoint ladder, logs, and
    // GS history (the old direct pipeline leaked all three).
    for stage in 0..2 {
        let dir = format!("jobs/pipe-stage{stage}");
        let leftovers: Vec<String> = cluster
            .dfs()
            .list(&dir)
            .unwrap_or_default()
            .into_iter()
            .filter(|p| p.contains("ckpt") || p.contains("msglog") || p.contains("gs-hist"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "stage {stage} leaked recovery state: {leftovers:?}"
        );
    }
}
