//! Property tests for the radix sort subsystem: the LSB/software-
//! write-combining path ([`RadixScratch`], [`TupleRadixSorter`],
//! `Frame::sort`) must be indistinguishable from the PR 1 comparison
//! sorter — and from a plain `Vec::sort` reference model — across
//! duplicate vids, tuples shorter than 8 bytes, distinct tuples sharing
//! an 8-byte prefix, empty input, single entries, and adversarial digit
//! distributions that concentrate all work in one byte plane. Stability
//! and exact counter accounting (`radix_sort_entries`,
//! `radix_passes_skipped`, `sort_comparison_fallbacks`) are asserted
//! alongside equivalence, and the spill path is pinned to zero drift in
//! `sort_bytes_spilled` between the two modes.
//!
//! The case count honours `PROPTEST_CASES` so CI's storage-proptest job
//! can raise it without a code change.

use pregelix::common::frame::{key_prefix, keyed_tuple, Frame};
use pregelix::common::radix::RadixScratch;
use pregelix::common::stats::ClusterCounters;
use pregelix::storage::file::{FileManager, TempDir};
use pregelix::storage::radix::{planned_passes, SortMode, TupleRadixSorter};
use pregelix::storage::sort::ExternalSorter;
use pregelix_common::arena::{TupleArena, TupleRef};
use proptest::prelude::*;
use proptest::test_runner::TestCaseResult;

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

// ---------------------------------------------------------------------------
// Input strategies — each targets a failure mode the radix path must not
// have.
// ---------------------------------------------------------------------------

/// Keyed tuples with vids drawn from a small domain: duplicate keys are
/// the norm, payloads vary, so tie groups carry real sorting work.
fn dup_vid_tuples() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec((0u64..64, prop::collection::vec(any::<u8>(), 0..12)), 0..800)
        .prop_map(|v| v.into_iter().map(|(vid, p)| keyed_tuple(vid, &p)).collect())
}

/// Raw byte strings of length 0..12: most are shorter than the 8-byte
/// prefix, so zero-padded prefixes collide ("a" vs "a\0") and the
/// tie-group fallback must separate them by true byte order.
fn short_tuples() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 0..12), 0..800)
}

/// Distinct tuples sharing one of a handful of 8-byte prefixes: the radix
/// passes cannot separate them at all, everything rides on tie groups.
fn shared_prefix_tuples() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec((0u64..4, any::<u32>()), 0..800).prop_map(|v| {
        v.into_iter()
            .map(|(p, suffix)| keyed_tuple(p * 1000, &suffix.to_be_bytes()))
            .collect()
    })
}

/// Adversarial digit distributions: every key is a single digit shifted
/// into one byte plane, so the whole varying bit-span sits high in the
/// key and the plan must place its digit windows off the byte grid.
fn single_plane_tuples() -> impl Strategy<Value = Vec<Vec<u8>>> {
    (0u32..8).prop_flat_map(|plane| {
        prop::collection::vec(any::<u8>(), 0..800).prop_map(move |digits| {
            digits
                .into_iter()
                .map(|d| keyed_tuple((d as u64) << (8 * plane), b"x"))
                .collect()
        })
    })
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

fn load(tuples: &[Vec<u8>]) -> (TupleArena, Vec<(u64, TupleRef)>) {
    let mut arena = TupleArena::new(64 * 1024);
    let refs = tuples
        .iter()
        .map(|t| (key_prefix(t), arena.append(t)))
        .collect();
    (arena, refs)
}

fn sort_with(mode: SortMode, tuples: &[Vec<u8>], c: &ClusterCounters) -> Vec<Vec<u8>> {
    let (arena, mut refs) = load(tuples);
    // Threshold lowered to 2 so every non-trivial case exercises the
    // radix plan rather than the small-batch comparison gate.
    let mut s = TupleRadixSorter::with_counters(mode, c.clone()).with_min_entries(2);
    s.sort(&arena, &mut refs);
    refs.iter().map(|&(_, r)| arena.get(r).to_vec()).collect()
}

/// Count the tie groups (runs of ≥ 2 equal zero-padded prefixes) the
/// radix path must hand to the comparison fallback — computable from the
/// multiset of inputs alone, which is what makes exact counter
/// accounting checkable.
fn expected_tie_groups(model: &[Vec<u8>]) -> u64 {
    let mut prefixes: Vec<u64> = model.iter().map(|t| key_prefix(t)).collect();
    prefixes.sort_unstable();
    let mut groups = 0u64;
    let mut i = 0usize;
    while i < prefixes.len() {
        let mut j = i + 1;
        while j < prefixes.len() && prefixes[j] == prefixes[i] {
            j += 1;
        }
        if j - i >= 2 {
            groups += 1;
        }
        i = j;
    }
    groups
}

/// Replay the sorter's dispatch on the input multiset alone and predict
/// the exact `(radix_sort_entries, radix_passes_skipped,
/// sort_comparison_fallbacks)` charge of one Auto-mode sort at a radix
/// threshold of 2. Mirrors `TupleRadixSorter::sort`'s branch order:
/// presorted precheck, constant-prefix batch, over-wide span, then the
/// pass plan plus one fallback per tie group.
fn expected_auto_charge(tuples: &[Vec<u8>], model: &[Vec<u8>]) -> (u64, u64, u64) {
    let n = tuples.len() as u64;
    if tuples.len() <= 1 {
        return (0, 0, 0);
    }
    if tuples.windows(2).all(|w| w[0] <= w[1]) {
        return (n, 8, 0);
    }
    let (orv, andv) = tuples.iter().fold((0u64, !0u64), |(o, a), t| {
        let k = key_prefix(t);
        (o | k, a & k)
    });
    let varies = orv ^ andv;
    if varies == 0 {
        return (n, 8, 1);
    }
    let span = 64 - varies.leading_zeros() - varies.trailing_zeros();
    if span > 32 {
        return (0, 0, 1);
    }
    (
        n,
        (8 - planned_passes(span)) as u64,
        expected_tie_groups(model),
    )
}

fn check(tuples: Vec<Vec<u8>>) -> TestCaseResult {
    let mut model = tuples.clone();
    model.sort();

    let auto_c = ClusterCounters::new();
    let cmp_c = ClusterCounters::new();
    let auto = sort_with(SortMode::Auto, &tuples, &auto_c);
    let cmp = sort_with(SortMode::ComparisonOnly, &tuples, &cmp_c);
    prop_assert_eq!(&auto, &model);
    prop_assert_eq!(&cmp, &model);

    let (entries, skipped, fallbacks) = expected_auto_charge(&tuples, &model);
    prop_assert_eq!(auto_c.radix_sort_entries(), entries);
    prop_assert_eq!(auto_c.radix_passes_skipped(), skipped);
    prop_assert_eq!(auto_c.sort_comparison_fallbacks(), fallbacks);

    prop_assert_eq!(cmp_c.radix_sort_entries(), 0);
    prop_assert_eq!(cmp_c.radix_passes_skipped(), 0);
    prop_assert_eq!(
        cmp_c.sort_comparison_fallbacks(),
        u64::from(tuples.len() > 1)
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: cases(), ..ProptestConfig::default() })]

    #[test]
    fn duplicate_vids_radix_matches_comparison_and_model(tuples in dup_vid_tuples()) {
        check(tuples)?;
    }

    #[test]
    fn short_tuples_radix_matches_comparison_and_model(tuples in short_tuples()) {
        check(tuples)?;
    }

    #[test]
    fn shared_prefixes_radix_matches_comparison_and_model(tuples in shared_prefix_tuples()) {
        check(tuples)?;
    }

    #[test]
    fn single_plane_digits_radix_matches_comparison_and_model(tuples in single_plane_tuples()) {
        check(tuples)?;
    }

    /// Stability at the engine level: entries carrying their arrival index
    /// as the payload must keep ascending indices within every equal-key
    /// run, whichever planes the pass-skipper decides to execute.
    #[test]
    fn radix_scratch_is_stable_on_equal_keys(
        keys in prop::collection::vec(0u64..32, 2..2000),
    ) {
        let mut entries: Vec<(u64, u32)> =
            keys.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
        let mut scratch = RadixScratch::new();
        let outcome = scratch.sort_by_key(&mut entries);
        prop_assert_eq!(outcome.entries, entries.len() as u64);
        prop_assert_eq!(outcome.passes_run + outcome.passes_skipped, 8);
        for w in entries.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "keys out of order");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "stability violated within key {}", w[0].0);
            }
        }
    }

    /// The frame-local sort agrees with the model across the radix
    /// threshold (a frame either takes the small-batch comparison path or
    /// the radix path depending on how many tuples fit).
    #[test]
    fn frame_sort_matches_model(tuples in dup_vid_tuples()) {
        let mut frame = Frame::with_capacity(1 << 20);
        let mut model = Vec::new();
        for t in &tuples {
            if frame.try_append(t) {
                model.push(t.clone());
            }
        }
        model.sort();
        frame.sort();
        let got: Vec<Vec<u8>> = frame.iter().map(|t| t.to_vec()).collect();
        prop_assert_eq!(got, model);
    }

    /// End-to-end external sort: radix and comparison modes must produce
    /// byte-identical streams AND byte-identical spill traffic. Any radix
    /// reordering bug that survives the in-memory equivalence checks
    /// would desynchronise run boundaries or merge output here.
    #[test]
    fn external_sort_modes_agree_with_zero_spill_drift(
        vids in prop::collection::vec(0u64..50_000, 1..1500),
    ) {
        let tuples: Vec<Vec<u8>> = vids
            .iter()
            .enumerate()
            .map(|(i, &v)| keyed_tuple(v, &(i as u64).to_le_bytes()))
            .collect();

        let mut outputs = Vec::new();
        let mut spilled = Vec::new();
        for mode in [SortMode::Auto, SortMode::ComparisonOnly] {
            let dir = TempDir::new("radix-drift").unwrap();
            let counters = ClusterCounters::new();
            let fm = FileManager::new(dir.path(), 4096, counters.clone()).unwrap();
            // A budget this small forces several runs per 1500 tuples, and
            // the lowered threshold routes every spill batch through the
            // radix plan (vids up to 50k: word pass + fused pass) in Auto
            // mode.
            let mut sorter = ExternalSorter::new(fm, "drift", 4096)
                .with_sort_mode(mode)
                .with_sort_min_entries(2);
            for t in &tuples {
                sorter.add(t).unwrap();
            }
            let stream = sorter.finish().unwrap();
            outputs.push(stream.collect_all().unwrap());
            spilled.push(counters.snapshot().sort_bytes_spilled);
        }
        prop_assert_eq!(&outputs[0], &outputs[1], "stream output drift between modes");
        prop_assert_eq!(spilled[0], spilled[1], "sort_bytes_spilled drift between modes");

        let mut model = tuples;
        model.sort();
        prop_assert_eq!(&outputs[0], &model);
    }
}
