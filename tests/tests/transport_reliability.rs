//! Reliable connector transport, end to end (§4, §5.5): wire-level frame
//! faults — drops, duplicates, corruption, lost acks — injected into live
//! Pregel jobs must be absorbed *in place* by the sequenced/acked transport:
//! zero checkpoint recoveries, bit-identical final values, and only the
//! `frames_retransmitted` / `frames_deduped` / `frames_corrupted` counters
//! moving. Only a retransmit *storm* (every resend of a frame also lost,
//! exhausting the bounded budget) is allowed to degrade to the §5.5
//! checkpoint-recovery path.
//!
//! All faults fire at exact event counts through the deterministic
//! [`pregelix::common::fault`] harness — no timers anywhere — so every
//! scenario asserts exact counter values and appends a reproducible line to
//! `$CHAOS_DIGEST` for CI's run-twice-and-diff determinism check.

use pregelix::common::fault::{self, Fault, FaultPlan, Site};
use pregelix::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Helpers (mirrors fault_tolerance.rs — integration binaries are separate)
// ---------------------------------------------------------------------------

/// A chain component `start — start+1 — … — start+len-1` (symmetric edges):
/// min-label CC over it takes a predictable number of supersteps, and every
/// superstep moves messages, so frame-send events are plentiful.
fn chain(start: u64, len: u64) -> Vec<(u64, Vec<(u64, f64)>)> {
    (0..len)
        .map(|i| {
            let vid = start + i;
            let mut edges = Vec::new();
            if i > 0 {
                edges.push((vid - 1, 1.0));
            }
            if i + 1 < len {
                edges.push((vid + 1, 1.0));
            }
            (vid, edges)
        })
        .collect()
}

fn two_chains() -> Vec<(u64, Vec<(u64, f64)>)> {
    let mut records = chain(0, 8);
    records.extend(chain(100, 6));
    records
}

fn cc_values(graph: &LoadedGraph) -> Vec<(u64, u64)> {
    graph
        .collect_vertices::<ConnectedComponents>()
        .unwrap()
        .into_iter()
        .map(|v| (v.vid, v.value))
        .collect()
}

fn parallel_cluster(workers: usize) -> Cluster {
    Cluster::new(ClusterConfig::new(workers, 8 << 20)).unwrap()
}

/// No-fault reference run (callers install their plan *after* this).
fn no_fault_reference(
    cluster: &Cluster,
    job: &PregelixJob,
    records: &[(u64, Vec<(u64, f64)>)],
) -> (JobSummary, Vec<(u64, u64)>) {
    let program = Arc::new(ConnectedComponents);
    let (summary, graph) =
        run_job_from_records(cluster, &program, job, records.to_vec()).unwrap();
    assert_eq!(summary.recoveries, 0);
    assert_eq!(summary.stats.frames_retransmitted, 0, "clean wire in reference run");
    assert_eq!(summary.stats.frames_deduped, 0);
    assert_eq!(summary.stats.frames_corrupted, 0);
    let values = cc_values(&graph);
    (summary, values)
}

fn values_hash(values: &[(u64, u64)]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for (vid, val) in values {
        for b in vid.to_le_bytes().into_iter().chain(val.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// One deterministic digest line per scenario: counters and value hashes
/// only, never durations. CI runs the suite twice and diffs the files.
fn chaos_digest(scenario: &str, summary: &JobSummary, injected: u64, values: &[(u64, u64)]) {
    let Ok(path) = std::env::var("CHAOS_DIGEST") else {
        return;
    };
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .unwrap();
    writeln!(
        f,
        "{scenario} recoveries={} retries={} supersteps={} injected={injected} \
         retx={} dedup={} corrupt={} dead={} probes={} redesc={} bloomneg={} \
         bloomfp={} radixn={} rskip={} cmpfb={} fadv={} bwa={} skew={} \
         conf={} cfb={} logw={} logr={} ckret={} slaba={} slabr={} fcopy={} \
         jcmp={} jmsgs={} jcomb={} values={:016x}",
        summary.recoveries,
        summary.retries,
        summary.supersteps,
        summary.stats.frames_retransmitted,
        summary.stats.frames_deduped,
        summary.stats.frames_corrupted,
        summary.stats.workers_declared_dead,
        summary.stats.probe_leaf_hits,
        summary.stats.probe_redescents,
        summary.stats.bloom_negatives,
        summary.stats.bloom_false_positives,
        summary.stats.radix_sort_entries,
        summary.stats.radix_passes_skipped,
        summary.stats.sort_comparison_fallbacks,
        summary.stats.frontier_advances,
        summary.stats.barrier_waits_avoided,
        summary.stats.max_partition_skew,
        summary.stats.confined_recoveries,
        summary.stats.confined_fallbacks,
        summary.stats.log_bytes_written,
        summary.stats.log_runs_replayed,
        summary.stats.ckpt_bytes_retired,
        summary.stats.slab_allocations,
        summary.stats.slab_recycled,
        summary.stats.frame_bytes_copied,
        summary.job_stats.compute_calls,
        summary.job_stats.messages_sent,
        summary.job_stats.messages_combined,
        values_hash(values),
    )
    .unwrap();
}

/// Run the job under `plan` and require the absorbed-in-place outcome:
/// zero recoveries/retries, the reference superstep count, bit-identical
/// values. Returns the summary for counter-specific assertions.
fn run_absorbed(
    scenario: &str,
    guard: &fault::ChaosGuard,
    plan: FaultPlan,
    workers: usize,
    job: &PregelixJob,
    records: &[(u64, Vec<(u64, f64)>)],
    reference: &JobSummary,
    expected: &[(u64, u64)],
) -> (JobSummary, u64) {
    let plan = guard.install(plan);
    let cluster = parallel_cluster(workers);
    let program = Arc::new(ConnectedComponents);
    let (summary, graph) =
        run_job_from_records(&cluster, &program, job, records.to_vec()).unwrap();
    assert_eq!(summary.recoveries, 0, "{scenario}: wire faults must not consume recoveries");
    assert_eq!(summary.retries, 0, "{scenario}");
    assert_eq!(summary.supersteps, reference.supersteps, "{scenario}");
    assert_eq!(summary.stats.workers_declared_dead, 0, "{scenario}: nobody died");
    assert_eq!(cc_values(&graph), expected, "{scenario}: values must be bit-identical");
    let injected = plan.injected();
    chaos_digest(scenario, &summary, injected, expected);
    guard.clear();
    (summary, injected)
}

// ---------------------------------------------------------------------------
// The nth-frame sweeps: drop / duplicate / corrupt / ack loss
// ---------------------------------------------------------------------------

/// Drop the nth `msg`-stream frame send, for a sweep of n: every run must
/// complete with zero recoveries and one retransmission per injected drop.
#[test]
fn msg_frame_drop_at_every_nth_send_is_absorbed() {
    let guard = fault::exclusive();
    let records = two_chains();
    let job = PregelixJob::new("tr-drop");
    let cluster = parallel_cluster(2);
    let (reference, expected) = no_fault_reference(&cluster, &job, &records);
    drop(cluster);

    let mut injected_any = false;
    for n in [1u64, 2, 3, 5, 8] {
        let (summary, injected) = run_absorbed(
            &format!("msg-drop-n{n}"),
            &guard,
            FaultPlan::new().on(Site::FrameSend, "msg", n, Fault::DropFrame),
            2,
            &job,
            &records,
            &reference,
            &expected,
        );
        if injected > 0 {
            injected_any = true;
            assert!(
                summary.stats.frames_retransmitted >= 1,
                "n={n}: the dropped frame was retransmitted"
            );
        }
    }
    assert!(injected_any, "the sweep must actually inject faults");
}

/// Duplicate the nth `msg`-stream frame send: the receiver's seq dedup
/// discards the echo — exactly-once delivery without combiner help.
#[test]
fn msg_frame_duplicate_at_every_nth_send_is_deduplicated() {
    let guard = fault::exclusive();
    let records = two_chains();
    let job = PregelixJob::new("tr-dup");
    let cluster = parallel_cluster(2);
    let (reference, expected) = no_fault_reference(&cluster, &job, &records);
    drop(cluster);

    for n in [1u64, 2, 3, 5] {
        let (summary, injected) = run_absorbed(
            &format!("msg-dup-n{n}"),
            &guard,
            FaultPlan::new().on(Site::FrameSend, "msg", n, Fault::DuplicateFrame),
            2,
            &job,
            &records,
            &reference,
            &expected,
        );
        if n == 1 {
            // The first msg event is always a data frame: its echo is
            // counted by the dedup path, deterministically once.
            assert_eq!(injected, 1);
            assert_eq!(summary.stats.frames_deduped, 1, "echo discarded by seq");
        }
    }
}

/// Flip a bit in the nth `msg` frame on the wire: the CRC check rejects it,
/// the pristine copy is retransmitted, and the corruption never reaches the
/// application.
#[test]
fn msg_frame_corruption_is_caught_by_crc_and_retransmitted() {
    let guard = fault::exclusive();
    let records = two_chains();
    let job = PregelixJob::new("tr-corrupt");
    let cluster = parallel_cluster(2);
    let (reference, expected) = no_fault_reference(&cluster, &job, &records);
    drop(cluster);

    for n in [1u64, 3] {
        let (summary, injected) = run_absorbed(
            &format!("msg-corrupt-n{n}"),
            &guard,
            FaultPlan::new().on(Site::FrameSend, "msg", n, Fault::CorruptFrame),
            2,
            &job,
            &records,
            &reference,
            &expected,
        );
        if injected > 0 {
            assert!(summary.stats.frames_retransmitted >= 1, "n={n}: pristine copy resent");
        }
        if n == 1 {
            assert_eq!(injected, 1);
            assert_eq!(summary.stats.frames_corrupted, 1, "CRC rejection counted");
        }
    }
}

/// Lose ack content on the `msg` stream (the wakeup edge survives — a lost
/// wakeup would strand a windowed sender forever): delivery completes with
/// zero recoveries and identical values.
#[test]
fn msg_ack_loss_is_survivable() {
    let guard = fault::exclusive();
    let records = two_chains();
    let job = PregelixJob::new("tr-ackloss");
    let cluster = parallel_cluster(2);
    let (reference, expected) = no_fault_reference(&cluster, &job, &records);
    drop(cluster);

    for n in [1u64, 2, 4] {
        run_absorbed(
            &format!("msg-ackloss-n{n}"),
            &guard,
            FaultPlan::new().on(Site::AckSend, "msg", n, Fault::DropFrame),
            2,
            &job,
            &records,
            &reference,
            &expected,
        );
    }
}

// ---------------------------------------------------------------------------
// The other stream labels: mut, gs
// ---------------------------------------------------------------------------

/// CC sends no mutations, so the `mut` streams carry only Fin envelopes —
/// dropping one exercises the lost-Fin retransmission path inside a live
/// job (the stream must still close, or mutate tasks hang the superstep).
#[test]
fn mut_stream_fin_drop_is_retransmitted() {
    let guard = fault::exclusive();
    let records = two_chains();
    let job = PregelixJob::new("tr-mut");
    let cluster = parallel_cluster(2);
    let (reference, expected) = no_fault_reference(&cluster, &job, &records);
    drop(cluster);

    let (summary, injected) = run_absorbed(
        "mut-fin-drop",
        &guard,
        FaultPlan::new().on(Site::FrameSend, "mut", 1, Fault::DropFrame),
        2,
        &job,
        &records,
        &reference,
        &expected,
    );
    assert_eq!(injected, 1);
    assert!(summary.stats.frames_retransmitted >= 1, "Fin redelivered");
}

/// Drop and duplicate `gs` report frames in the same run: the two-stage
/// aggregation still sees every partition report exactly once, so the halt
/// decision and aggregate are computed from complete, deduplicated input.
#[test]
fn gs_stream_drop_plus_duplicate_is_absorbed() {
    let guard = fault::exclusive();
    let records = two_chains();
    let job = PregelixJob::new("tr-gs");
    let cluster = parallel_cluster(2);
    let (reference, expected) = no_fault_reference(&cluster, &job, &records);
    drop(cluster);

    let (summary, injected) = run_absorbed(
        "gs-drop-dup",
        &guard,
        FaultPlan::new()
            .on(Site::FrameSend, "gs", 1, Fault::DropFrame)
            .on(Site::FrameSend, "gs", 3, Fault::DuplicateFrame),
        2,
        &job,
        &records,
        &reference,
        &expected,
    );
    assert_eq!(injected, 2);
    assert!(summary.stats.frames_retransmitted >= 1);
}

// ---------------------------------------------------------------------------
// Sequential-timed (open-loop) mode
// ---------------------------------------------------------------------------

/// In sequential-timed mode there is no concurrent receiver to nack, so a
/// dropped frame is recovered from the stream's control plane when the
/// receiver drains — same zero-recovery contract, same values.
#[test]
fn sequential_timed_mode_recovers_wire_loss_open_loop() {
    let guard = fault::exclusive();
    let records = two_chains();
    let job = PregelixJob::new("tr-seq");
    let make = || Cluster::new(ClusterConfig::new(2, 8 << 20).sequential_timed()).unwrap();
    let program = Arc::new(ConnectedComponents);
    let (reference, graph) =
        run_job_from_records(&make(), &program, &job, records.clone()).unwrap();
    assert_eq!(reference.recoveries, 0);
    let expected = cc_values(&graph);

    let plan = guard.install(
        FaultPlan::new()
            .on(Site::FrameSend, "msg", 1, Fault::DropFrame)
            .on(Site::FrameSend, "msg", 4, Fault::DuplicateFrame),
    );
    let (summary, graph) =
        run_job_from_records(&make(), &program, &job, records.clone()).unwrap();
    assert_eq!(summary.recoveries, 0);
    assert_eq!(summary.supersteps, reference.supersteps);
    assert!(plan.injected() >= 1);
    assert!(
        summary.stats.frames_retransmitted >= 1,
        "parked frame recovered through the control plane"
    );
    assert_eq!(cc_values(&graph), expected);
    chaos_digest("seq-open-loop", &summary, plan.injected(), &expected);
}

// ---------------------------------------------------------------------------
// Frontier-mode wire faults
// ---------------------------------------------------------------------------

/// Frontier windows put several supersteps' streams in flight at once, so
/// wire faults land while partitions are *mid-skew*. Sequential-timed
/// clusters keep the frame-event order (and therefore the nth-event fault
/// firing and the digest counters) deterministic even with gated tasks in
/// the window — the same open-loop recovery contract as
/// `sequential_timed_mode_recovers_wire_loss_open_loop`.
#[test]
fn frontier_mode_absorbs_wire_faults_without_recovery() {
    let guard = fault::exclusive();
    let records = two_chains();
    let make = || Cluster::new(ClusterConfig::new(2, 8 << 20).sequential_timed()).unwrap();
    let program = Arc::new(ConnectedComponents);
    // The ground truth is the no-fault *barrier* answer: frontier plus wire
    // chaos must still land exactly there.
    let barrier_job = PregelixJob::new("tr-fr");
    let (reference, graph) =
        run_job_from_records(&make(), &program, &barrier_job, records.clone()).unwrap();
    assert_eq!(reference.recoveries, 0);
    let expected = cc_values(&graph);
    let job = PregelixJob::new("tr-fr").with_execution_mode(ExecutionMode::Frontier);

    for (scenario, kind) in [
        ("fr-msg-drop", Fault::DropFrame),
        ("fr-msg-dup", Fault::DuplicateFrame),
    ] {
        let plan = guard.install(FaultPlan::new().on(Site::FrameSend, "msg", 1, kind));
        let (summary, graph) =
            run_job_from_records(&make(), &program, &job, records.clone()).unwrap();
        assert_eq!(summary.recoveries, 0, "{scenario}: wire faults never consume recoveries");
        assert_eq!(summary.retries, 0, "{scenario}");
        assert_eq!(summary.supersteps, reference.supersteps, "{scenario}");
        assert_eq!(plan.injected(), 1, "{scenario}");
        assert!(summary.stats.frontier_advances > 0, "{scenario}: windows gated computes");
        assert!(
            summary.stats.barrier_waits_avoided > 0,
            "{scenario}: the fault must not collapse the frontier back to a barrier"
        );
        assert_eq!(cc_values(&graph), expected, "{scenario}: bit-identical to barrier");
        chaos_digest(scenario, &summary, plan.injected(), &expected);
        guard.clear();
    }
}

/// Mixed wire chaos inside one frontier run: message drop and duplicate
/// plus a dropped global-state report, all while windows keep partitions
/// at different supersteps. Zero recoveries, the barrier answer, and a
/// reproducible digest line.
#[test]
fn frontier_mode_mixed_wire_chaos_stays_bit_identical() {
    let guard = fault::exclusive();
    let records = two_chains();
    let make = || Cluster::new(ClusterConfig::new(2, 8 << 20).sequential_timed()).unwrap();
    let program = Arc::new(ConnectedComponents);
    let barrier_job = PregelixJob::new("tr-fr-mix");
    let (reference, graph) =
        run_job_from_records(&make(), &program, &barrier_job, records.clone()).unwrap();
    let expected = cc_values(&graph);
    let job = PregelixJob::new("tr-fr-mix").with_execution_mode(ExecutionMode::Frontier);

    let plan = guard.install(
        FaultPlan::new()
            .on(Site::FrameSend, "msg", 2, Fault::DropFrame)
            .on(Site::FrameSend, "msg", 5, Fault::DuplicateFrame)
            .on(Site::FrameSend, "gs", 1, Fault::DropFrame),
    );
    let (summary, graph) =
        run_job_from_records(&make(), &program, &job, records.clone()).unwrap();
    assert_eq!(summary.recoveries, 0);
    assert_eq!(summary.retries, 0);
    assert_eq!(summary.supersteps, reference.supersteps);
    assert!(plan.injected() >= 2, "the chaos plan must actually fire");
    assert!(
        summary.stats.frames_retransmitted >= 1,
        "dropped frames recovered through the control plane"
    );
    assert!(summary.stats.barrier_waits_avoided > 0);
    assert_eq!(cc_values(&graph), expected);
    chaos_digest("fr-mixed-chaos", &summary, plan.injected(), &expected);
}

// ---------------------------------------------------------------------------
// Retransmit storms: the one wire fault allowed to consume a recovery
// ---------------------------------------------------------------------------

/// Drop a frame *and* every one of its retransmissions: the bounded resend
/// budget runs out and the sender surfaces a recoverable error. Without
/// checkpoints that error reaches the caller (typed, recoverable) instead
/// of hanging the superstep.
#[test]
fn retransmit_storm_without_checkpoints_surfaces_recoverable_error() {
    let guard = fault::exclusive();
    let records = two_chains();
    let job = PregelixJob::new("tr-storm");
    let mut plan = FaultPlan::new().on(Site::FrameSend, "msg", 1, Fault::DropFrame);
    for n in 1..=16u64 {
        plan = plan.on(Site::FrameResend, "msg", n, Fault::DropFrame);
    }
    guard.install(plan);
    let cluster = parallel_cluster(2);
    let program = Arc::new(ConnectedComponents);
    let err = run_job_from_records(&cluster, &program, &job, records).unwrap_err();
    assert!(err.is_recoverable(), "a storm is infrastructure, not user error: {err}");
    assert!(
        err.to_string().contains("retransmit storm"),
        "budget exhaustion must be diagnosable: {err}"
    );
}

/// The same storm with checkpointing on degrades to exactly one §5.5
/// recovery — and because the fault rules have all fired, the replay runs
/// on a clean wire and converges to bit-identical values.
#[test]
fn retransmit_storm_falls_back_to_checkpoint_recovery() {
    let guard = fault::exclusive();
    let records = two_chains();
    let job = PregelixJob::new("tr-storm-ckpt").with_checkpoint_interval(1);
    let cluster = parallel_cluster(2);
    let (_, expected) = no_fault_reference(&cluster, &job, &records);
    drop(cluster);

    let mut plan = FaultPlan::new().on(Site::FrameSend, "msg", 1, Fault::DropFrame);
    for n in 1..=16u64 {
        plan = plan.on(Site::FrameResend, "msg", n, Fault::DropFrame);
    }
    let plan = guard.install(plan);
    let cluster = parallel_cluster(2);
    let program = Arc::new(ConnectedComponents);
    let (summary, graph) =
        run_job_from_records(&cluster, &program, &job, records.clone()).unwrap();
    assert_eq!(summary.recoveries, 1, "storm consumes exactly one recovery");
    assert_eq!(summary.stats.workers_declared_dead, 0, "no machine was lost");
    assert_eq!(cc_values(&graph), expected);
    chaos_digest("storm-ckpt-recovery", &summary, plan.injected(), &expected);
}

// ---------------------------------------------------------------------------
// Mixed chaos: every fault kind in one run
// ---------------------------------------------------------------------------

/// One plan mixing drops, duplicates, corruption and ack loss across the
/// msg/mut/gs streams: still zero recoveries and bit-identical values —
/// the acceptance bar for the transport as a whole.
#[test]
fn mixed_wire_chaos_converges_bit_identically() {
    let guard = fault::exclusive();
    let records = two_chains();
    let job = PregelixJob::new("tr-mix");
    let cluster = parallel_cluster(2);
    let (reference, expected) = no_fault_reference(&cluster, &job, &records);
    drop(cluster);

    let (summary, injected) = run_absorbed(
        "mixed-chaos",
        &guard,
        FaultPlan::new()
            .on(Site::FrameSend, "msg", 1, Fault::DropFrame)
            .on(Site::FrameSend, "msg", 3, Fault::DuplicateFrame)
            .on(Site::FrameSend, "msg", 5, Fault::CorruptFrame)
            .on(Site::AckSend, "msg", 2, Fault::DropFrame)
            .on(Site::FrameSend, "mut", 1, Fault::DropFrame)
            .on(Site::FrameSend, "gs", 2, Fault::DropFrame),
        2,
        &job,
        &records,
        &reference,
        &expected,
    );
    assert!(injected >= 4, "most of the mixed plan must fire, got {injected}");
    assert!(summary.stats.frames_retransmitted >= 2);
}
