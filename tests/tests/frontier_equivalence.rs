//! Barrier-vs-frontier differential harness.
//!
//! Frontier mode (`ExecutionMode::Frontier`) lets a partition start
//! superstep `i + 1` as soon as every inbound `Msg_i` stream for that
//! partition has closed, instead of waiting for the global barrier. The
//! correctness contract is *observational equivalence*: for every program
//! and every schedule — including adversarially skewed ones — the frontier
//! run must produce bit-identical vertex values, the same halting
//! superstep, the same final global state, and the same data-derived
//! counter totals (`messages_sent`, `messages_combined`, `compute_calls`)
//! as the barrier run.
//!
//! Skew is manufactured two ways, both deterministic:
//!
//! * **Data skew** — a graph whose vids all hash to one partition, leaving
//!   the other partition permanently message-free (it can never advance
//!   early, so `max_partition_skew` must read 1).
//! * **Schedule skew** — a `Site::Stall` fault pinning a deterministic CPU
//!   spin to one partition's message task (never a timer), fired through
//!   the event-count fault harness in *both* modes so the runs stay
//!   comparable.

use pregelix::common::fault::{self, Fault, FaultPlan, Site};
use pregelix::common::hash_partition;
use pregelix::graphgen::btc;
use pregelix::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// Run `program` over `records` in the given execution mode on a fresh
/// cluster; returns the summary and the final value relation with every
/// value reduced to raw bits (f64 values compare via `to_bits`, so "equal"
/// means *bit*-equal, not approximately equal).
fn run_mode<P, F>(
    program: &Arc<P>,
    name: &str,
    mode: ExecutionMode,
    workers: usize,
    ppw: usize,
    records: &[(u64, Vec<(u64, f64)>)],
    to_bits: F,
) -> (JobSummary, Vec<(u64, u64)>)
where
    P: VertexProgram,
    F: Fn(&P::VertexValue) -> u64,
{
    let cluster = Cluster::new(ClusterConfig::new(workers, 8 << 20)).unwrap();
    let job = PregelixJob::new(name)
        .with_partitions_per_worker(ppw)
        .with_execution_mode(mode);
    let (summary, graph) =
        run_job_from_records(&cluster, program, &job, records.to_vec()).unwrap();
    assert_eq!(summary.recoveries, 0, "{name}: no faults, no recoveries");
    let mut values: Vec<(u64, u64)> = graph
        .collect_vertices::<P>()
        .unwrap()
        .into_iter()
        .map(|v| (v.vid, to_bits(&v.value)))
        .collect();
    values.sort_unstable_by_key(|(vid, _)| *vid);
    (summary, values)
}

/// The full differential contract between a barrier run and a frontier run
/// of the same job: values, halting superstep, final global state, and the
/// data-derived counter totals must all be identical. Barrier mode must
/// never touch the frontier counters.
fn assert_equivalent(
    tag: &str,
    barrier: &(JobSummary, Vec<(u64, u64)>),
    frontier: &(JobSummary, Vec<(u64, u64)>),
) {
    assert_eq!(frontier.1, barrier.1, "{tag}: vertex values must be bit-identical");
    assert_eq!(
        frontier.0.supersteps, barrier.0.supersteps,
        "{tag}: both modes must halt at the same superstep"
    );
    assert_eq!(
        frontier.0.final_gs, barrier.0.final_gs,
        "{tag}: the final global state (halt vote, aggregate, live counts) must match"
    );
    assert_eq!(
        frontier.0.stats.messages_sent, barrier.0.stats.messages_sent,
        "{tag}: messages_sent totals must match"
    );
    assert_eq!(
        frontier.0.stats.messages_combined, barrier.0.stats.messages_combined,
        "{tag}: messages_combined totals must match"
    );
    assert_eq!(
        frontier.0.stats.compute_calls, barrier.0.stats.compute_calls,
        "{tag}: compute_calls totals must match (ghost computes contribute zero)"
    );
    assert_eq!(
        barrier.0.stats.frontier_advances, 0,
        "{tag}: barrier mode has no gated computes"
    );
    assert_eq!(
        barrier.0.stats.barrier_waits_avoided, 0,
        "{tag}: barrier mode never advances early"
    );
    assert_eq!(
        barrier.0.stats.max_partition_skew, 0,
        "{tag}: barrier mode records no window skew"
    );
}

// ---------------------------------------------------------------------------
// The three workloads, differentially
// ---------------------------------------------------------------------------

/// CC is `frontier_safe`: on a message-dense BTC graph every partition
/// combines messages at every early boundary, so frontier mode must both
/// advance early (`barrier_waits_avoided > 0`) and stay bit-identical.
#[test]
fn cc_converges_identically_across_modes() {
    let records = btc::btc(2_000, 5.0, 42);
    let program = Arc::new(ConnectedComponents);
    let barrier = run_mode(&program, "feq-cc", ExecutionMode::Barrier, 3, 2, &records, |v| *v);
    let frontier =
        run_mode(&program, "feq-cc", ExecutionMode::Frontier, 3, 2, &records, |v| *v);
    assert_equivalent("cc", &barrier, &frontier);
    assert!(
        frontier.0.stats.frontier_advances > 0,
        "frontier mode must gate at least one compute start"
    );
    assert!(
        frontier.0.stats.barrier_waits_avoided > 0,
        "a frontier-safe program with dense messages must skip barrier waits"
    );
}

/// SSSP is `frontier_safe` and message-*sparse*: only the wavefront is
/// active, so early supersteps leave whole partitions message-free. Those
/// partitions must block on the exact global state while the wavefront
/// partitions advance early — the asymmetric case the window gates exist
/// for.
#[test]
fn sssp_converges_identically_across_modes() {
    let records = btc::btc(2_000, 6.0, 43);
    let program = Arc::new(ShortestPaths::new(0));
    let barrier = run_mode(
        &program,
        "feq-sssp",
        ExecutionMode::Barrier,
        3,
        2,
        &records,
        |v| v.to_bits(),
    );
    let frontier = run_mode(
        &program,
        "feq-sssp",
        ExecutionMode::Frontier,
        3,
        2,
        &records,
        |v| v.to_bits(),
    );
    assert_equivalent("sssp", &barrier, &frontier);
    assert!(frontier.0.stats.frontier_advances > 0);
    assert!(
        frontier.0.stats.barrier_waits_avoided > 0,
        "wavefront partitions must advance early"
    );
}

/// PageRank reads `ctx.num_vertices()` and folds a global aggregate, so it
/// is *not* frontier-safe: frontier mode still windows its supersteps
/// (`frontier_advances > 0`) but must never advance a partition past an
/// unresolved halt vote (`barrier_waits_avoided == 0`). Equivalence is
/// then structural: every compute sees the exact global state in both
/// modes, and the f64 ranks must agree bit for bit.
#[test]
fn pagerank_windows_but_never_advances_early() {
    let records = btc::btc(1_200, 6.0, 44);
    let program = Arc::new(PageRank::new(8));
    let barrier = run_mode(
        &program,
        "feq-pr",
        ExecutionMode::Barrier,
        2,
        2,
        &records,
        |v| v.to_bits(),
    );
    let frontier = run_mode(
        &program,
        "feq-pr",
        ExecutionMode::Frontier,
        2,
        2,
        &records,
        |v| v.to_bits(),
    );
    assert_equivalent("pagerank", &barrier, &frontier);
    assert!(
        frontier.0.stats.frontier_advances > 0,
        "non-frontier-safe programs still run windowed"
    );
    assert_eq!(
        frontier.0.stats.barrier_waits_avoided, 0,
        "a program that reads global state must never advance early"
    );
}

/// Min-label CC over a chain of length `L` halts at exactly superstep
/// `L + 1`, which lands the halt vote in the *middle* of a frontier window:
/// the remaining window slots run as ghosts and must not extend the job,
/// shift the halting superstep, or touch any counter.
#[test]
fn halt_mid_window_truncates_ghost_supersteps() {
    // A chain 0–1–…–8: 10 supersteps; FRONTIER_WINDOW = 4 puts the halt at
    // the second slot of the third window, leaving two ghost slots.
    let records: Vec<(u64, Vec<(u64, f64)>)> = (0..9u64)
        .map(|v| {
            let mut edges = Vec::new();
            if v > 0 {
                edges.push((v - 1, 1.0));
            }
            if v + 1 < 9 {
                edges.push((v + 1, 1.0));
            }
            (v, edges)
        })
        .collect();
    let program = Arc::new(ConnectedComponents);
    let barrier =
        run_mode(&program, "feq-ghost", ExecutionMode::Barrier, 2, 1, &records, |v| *v);
    let frontier =
        run_mode(&program, "feq-ghost", ExecutionMode::Frontier, 2, 1, &records, |v| *v);
    assert_eq!(barrier.0.supersteps, 10, "chain of 9: label walk + quiet superstep");
    assert_equivalent("ghost-window", &barrier, &frontier);
}

// ---------------------------------------------------------------------------
// Adversarial skew
// ---------------------------------------------------------------------------

/// Data skew: every vid hashes to partition 0 of 2, so partition 1 is
/// permanently empty and message-free — it can never advance early, while
/// partition 0 advances at every boundary. `max_partition_skew` must
/// observe the partial frontier (exactly 1: the gauge is 0/1), and the
/// answer must still match barrier mode.
#[test]
fn empty_partition_forces_observable_skew() {
    // Chain together the first 12 vids that hash_partition to 0 of 2.
    let vids: Vec<u64> = (0..400u64).filter(|v| hash_partition(*v, 2) == 0).take(12).collect();
    assert_eq!(vids.len(), 12);
    let records: Vec<(u64, Vec<(u64, f64)>)> = vids
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let mut edges = Vec::new();
            if i > 0 {
                edges.push((vids[i - 1], 1.0));
            }
            if i + 1 < vids.len() {
                edges.push((vids[i + 1], 1.0));
            }
            (*v, edges)
        })
        .collect();
    let program = Arc::new(ConnectedComponents);
    let barrier =
        run_mode(&program, "feq-skew", ExecutionMode::Barrier, 1, 2, &records, |v| *v);
    let frontier =
        run_mode(&program, "feq-skew", ExecutionMode::Frontier, 1, 2, &records, |v| *v);
    assert_equivalent("empty-partition", &barrier, &frontier);
    assert!(frontier.0.stats.barrier_waits_avoided > 0, "partition 0 advances early");
    assert_eq!(
        frontier.0.stats.max_partition_skew, 1,
        "a boundary where some-but-not-all partitions advanced early must be recorded"
    );
}

/// Schedule skew: a deterministic CPU spin (`Fault::Stall`) pinned to one
/// partition's message task at two consecutive supersteps — the
/// straggler stand-in, fired at exact event counts in *both* modes. The
/// stall changes wall-clock interleaving only, never data, so the
/// differential contract must hold unchanged and frontier mode must still
/// avoid barrier waits on the non-stalled partitions.
#[test]
fn straggler_partition_converges_identically_in_both_modes() {
    let guard = fault::exclusive();
    let records = btc::btc(1_500, 5.0, 45);
    let program = Arc::new(ConnectedComponents);
    let mut runs = Vec::new();
    for mode in [ExecutionMode::Barrier, ExecutionMode::Frontier] {
        // A fresh plan per run: rules fire once, and both runs must see the
        // identical schedule.
        let plan = guard.install(
            FaultPlan::new()
                .on(Site::Stall, "feq-stall:s2:p1", 1, Fault::Stall { work: 2_000_000 })
                .on(Site::Stall, "feq-stall:s3:p1", 1, Fault::Stall { work: 2_000_000 }),
        );
        let run = run_mode(&program, "feq-stall", mode, 2, 2, &records, |v| *v);
        assert_eq!(
            plan.injected(),
            2,
            "the straggler stall fired at both supersteps in {mode:?} mode"
        );
        runs.push(run);
        guard.clear();
    }
    let frontier = runs.pop().unwrap();
    let barrier = runs.pop().unwrap();
    assert_equivalent("straggler", &barrier, &frontier);
    assert!(
        frontier.0.stats.barrier_waits_avoided > 0,
        "non-stalled partitions must not wait for the straggler's barrier"
    );
}

// ---------------------------------------------------------------------------
// Property-based sweep
// ---------------------------------------------------------------------------

/// `PROPTEST_CASES`-responsive case count with a CI-friendly local default
/// (each case runs two full end-to-end jobs).
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
}

/// Random symmetric weighted graph (mirrors property_based.rs).
fn graph(n: u64, edges: u64, seed: u64) -> Vec<(u64, Vec<(u64, f64)>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut adj: Vec<Vec<(u64, f64)>> = vec![Vec::new(); n as usize];
    for _ in 0..edges {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b {
            continue;
        }
        let w = rng.gen_range(1..8) as f64;
        adj[a as usize].push((b, w));
        adj[b as usize].push((a, w));
    }
    adj.into_iter()
        .enumerate()
        .map(|(v, mut e)| {
            e.sort_unstable_by_key(|(d, _)| *d);
            e.dedup_by_key(|(d, _)| *d);
            (v as u64, e)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: cases(), ..ProptestConfig::default() })]

    /// Every random graph, worker count, and partition fan-out: frontier CC
    /// must be observationally equivalent to barrier CC.
    #[test]
    fn prop_frontier_cc_matches_barrier(
        seed in 0u64..500,
        n in 40u64..160,
        workers in 1usize..4,
        ppw in 1usize..3,
    ) {
        let records = graph(n, n * 2, seed);
        let program = Arc::new(ConnectedComponents);
        let name = format!("feq-prop-cc-{seed}");
        let barrier =
            run_mode(&program, &name, ExecutionMode::Barrier, workers, ppw, &records, |v| *v);
        let frontier =
            run_mode(&program, &name, ExecutionMode::Frontier, workers, ppw, &records, |v| *v);
        prop_assert_eq!(&frontier.1, &barrier.1, "vertex values");
        prop_assert_eq!(frontier.0.supersteps, barrier.0.supersteps);
        prop_assert_eq!(&frontier.0.final_gs, &barrier.0.final_gs);
        prop_assert_eq!(frontier.0.stats.messages_sent, barrier.0.stats.messages_sent);
        prop_assert_eq!(
            frontier.0.stats.messages_combined,
            barrier.0.stats.messages_combined
        );
        prop_assert_eq!(frontier.0.stats.compute_calls, barrier.0.stats.compute_calls);
    }

    /// The same sweep for SSSP, whose sparse wavefront exercises the
    /// blocked-partition path (f64 values compared bit for bit).
    #[test]
    fn prop_frontier_sssp_matches_barrier(
        seed in 0u64..500,
        n in 40u64..160,
        workers in 1usize..4,
    ) {
        let records = graph(n, n * 3, seed);
        let program = Arc::new(ShortestPaths::new(0));
        let name = format!("feq-prop-sssp-{seed}");
        let barrier = run_mode(
            &program, &name, ExecutionMode::Barrier, workers, 2, &records, |v| v.to_bits(),
        );
        let frontier = run_mode(
            &program, &name, ExecutionMode::Frontier, workers, 2, &records, |v| v.to_bits(),
        );
        prop_assert_eq!(&frontier.1, &barrier.1, "distances must be bit-identical");
        prop_assert_eq!(frontier.0.supersteps, barrier.0.supersteps);
        prop_assert_eq!(&frontier.0.final_gs, &barrier.0.final_gs);
        prop_assert_eq!(frontier.0.stats.messages_sent, barrier.0.stats.messages_sent);
        prop_assert_eq!(frontier.0.stats.compute_calls, barrier.0.stats.compute_calls);
    }

    /// Adversarial schedule skew: a random straggler (superstep, partition)
    /// stalled in both modes — the stall schedule is part of the case, so
    /// shrinking converges on the smallest skew that breaks equivalence.
    #[test]
    fn prop_straggler_schedules_stay_equivalent(
        seed in 0u64..200,
        n in 40u64..120,
        stall_ss in 2u64..5,
        stall_p in 0usize..4,
    ) {
        let guard = fault::exclusive();
        let records = graph(n, n * 2, seed);
        let program = Arc::new(ConnectedComponents);
        let name = format!("feq-prop-stall-{seed}");
        let scope = format!("{name}:s{stall_ss}:p{stall_p}");
        let mut runs = Vec::new();
        let mut injected = Vec::new();
        for mode in [ExecutionMode::Barrier, ExecutionMode::Frontier] {
            let plan = guard.install(FaultPlan::new().on(
                Site::Stall,
                &scope,
                1,
                Fault::Stall { work: 1_000_000 },
            ));
            // 2 workers x 2 partitions: stall_p always names a real partition.
            runs.push(run_mode(&program, &name, mode, 2, 2, &records, |v| *v));
            injected.push(plan.injected());
            guard.clear();
        }
        let frontier = runs.pop().unwrap();
        let barrier = runs.pop().unwrap();
        prop_assert_eq!(
            injected[0], injected[1],
            "equal superstep counts mean the stall fires identically in both modes"
        );
        prop_assert_eq!(&frontier.1, &barrier.1, "vertex values");
        prop_assert_eq!(frontier.0.supersteps, barrier.0.supersteps);
        prop_assert_eq!(&frontier.0.final_gs, &barrier.0.final_gs);
        prop_assert_eq!(frontier.0.stats.messages_sent, barrier.0.stats.messages_sent);
        prop_assert_eq!(frontier.0.stats.compute_calls, barrier.0.stats.compute_calls);
    }
}
