//! The zero-copy shared-slab frame path, end to end: the slab-backed wire
//! form must be bit-identical to the legacy `[n][ends…][data]` encoding
//! (run files, checkpoints and old captures stay readable), every decode
//! must alias the receive slab instead of copying, retransmission must
//! re-send the *identical* slab slice, and `frame_bytes_copied` must stay
//! structurally zero on the transport path — clean or faulted. Slab counter
//! accounting (`slab_allocations` / `slab_recycled`) is pinned exactly at
//! the slab level and pinned deterministic (double-run equality) at the
//! job level, mirroring CI's chaos-digest run-twice-and-diff check.
//!
//! The case count honours `PROPTEST_CASES` like the other property suites.

use pregelix::common::bytes::BytesSlab;
use pregelix::common::envelope::{FrameEnvelope, Payload};
use pregelix::common::fault::{self, Fault, FaultPlan, Site};
use pregelix::common::frame::{Frame, SharedFrame};
use pregelix::common::stats::ClusterCounters;
use pregelix::dataflow::transport::{reliable_channels, ReliableReceiver, ReliableSender};
use pregelix::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

// ---------------------------------------------------------------------------
// Encoding equivalence: the slab wire form IS the legacy frame encoding
// ---------------------------------------------------------------------------

/// The PR 1 frame codec, reimplemented from its spec as an independent
/// reference: `[n u32 LE][ends[i] u32 LE × n][tuple data]`.
fn legacy_encode(tuples: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(tuples.len() as u32).to_le_bytes());
    let mut end = 0u32;
    for t in tuples {
        end += t.len() as u32;
        out.extend_from_slice(&end.to_le_bytes());
    }
    for t in tuples {
        out.extend_from_slice(t);
    }
    out
}

fn build(tuples: &[Vec<u8>]) -> Frame {
    let mut f = Frame::with_capacity(1 << 20);
    for t in tuples {
        assert!(f.try_append(t));
    }
    f
}

fn tuple_vecs() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..60), 0..48)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: cases(), ..ProptestConfig::default() })]

    /// Freezing through a slab, freezing standalone, and the disk-path
    /// `serialize` all produce bytes identical to the legacy encoding.
    #[test]
    fn slab_wire_form_is_bit_identical_to_the_legacy_encoding(tuples in tuple_vecs()) {
        let reference = legacy_encode(&tuples);
        let frame = build(&tuples);

        let mut serialized = Vec::new();
        frame.serialize(&mut serialized);
        prop_assert_eq!(&serialized, &reference, "serialize drifted from the legacy codec");

        let standalone = frame.freeze_standalone();
        prop_assert_eq!(standalone.wire_bytes().as_slice(), reference.as_slice());

        let slab = BytesSlab::new(1 << 20);
        let pooled = frame.freeze(&slab);
        prop_assert_eq!(pooled.wire_bytes().as_slice(), reference.as_slice());
        prop_assert_eq!(pooled.crc(), standalone.crc());
    }

    /// Both decoders — the aliasing `SharedFrame::from_wire` and the owned
    /// `Frame::deserialize` — reproduce the tuples exactly.
    #[test]
    fn both_decoders_roundtrip_the_wire_form(tuples in tuple_vecs()) {
        let wire = legacy_encode(&tuples);

        let shared = SharedFrame::from_wire(
            pregelix::common::bytes::BytesSlice::from_vec(wire.clone()),
        ).unwrap();
        prop_assert_eq!(shared.len(), tuples.len());
        for (i, t) in tuples.iter().enumerate() {
            prop_assert_eq!(shared.tuple(i), t.as_slice());
        }

        let mut buf = wire.as_slice();
        let owned = Frame::deserialize(&mut buf).unwrap();
        prop_assert!(buf.is_empty(), "deserialize must consume the whole record");
        prop_assert_eq!(owned.len(), tuples.len());
        for (i, t) in tuples.iter().enumerate() {
            prop_assert_eq!(owned.tuple(i), t.as_slice());
        }
    }

    /// Every strict prefix of a wire record is rejected by both decoders —
    /// truncation can never decode silently.
    #[test]
    fn every_truncation_is_rejected(tuples in tuple_vecs()) {
        let wire = legacy_encode(&tuples);
        for cut in 0..wire.len() {
            let slice = pregelix::common::bytes::BytesSlice::from_vec(wire[..cut].to_vec());
            prop_assert!(
                SharedFrame::from_wire(slice).is_err(),
                "from_wire accepted a {cut}-byte prefix of a {}-byte record", wire.len()
            );
            let mut buf = &wire[..cut];
            prop_assert!(Frame::deserialize(&mut buf).is_err());
        }
    }

    /// A single bit flip anywhere in an encoded envelope is caught: the
    /// decode either fails structurally or the CRC gate reports a mismatch.
    #[test]
    fn envelope_bit_flips_never_verify(
        tuples in tuple_vecs(),
        byte_seed in any::<usize>(),
        bit in 0u8..8,
    ) {
        let frame = build(&tuples).freeze_standalone();
        let env = FrameEnvelope::data(Arc::from("zc"), 7, 42, frame);
        let mut wire = Vec::new();
        env.encode(&mut wire);
        let idx = byte_seed % wire.len();
        wire[idx] ^= 1 << bit;
        let slice = pregelix::common::bytes::BytesSlice::from_vec(wire);
        match FrameEnvelope::decode_slice(slice) {
            Err(_) => {}
            Ok((flipped, _rest)) => prop_assert!(
                !flipped.verify(),
                "flip at byte {idx} bit {bit} slipped past the CRC gate"
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Aliasing: decode shares the receive slab, delivery shares the send slab
// ---------------------------------------------------------------------------

/// `decode_slice` hands back a payload frame whose bytes alias the very
/// slice the receive loop adopted — no copy between wire and consumer.
#[test]
fn envelope_decode_aliases_the_receive_slab() {
    let frame = build(&[b"alpha".to_vec(), b"beta".to_vec()]).freeze_standalone();
    let env = FrameEnvelope::data(Arc::from("zc"), 3, 9, frame);
    let mut wire = Vec::new();
    env.encode(&mut wire);

    let slab = BytesSlab::new(1 << 16);
    let received = slab.adopt(wire);
    let (decoded, rest) = FrameEnvelope::decode_slice(received.clone()).unwrap();
    assert!(rest.is_empty());
    assert!(decoded.verify());
    let Payload::Data(f) = &decoded.payload else {
        panic!("expected a data payload");
    };
    assert!(
        f.wire_bytes().aliases(&received),
        "decoded frame must view the receive slab, not a copy"
    );
    assert_eq!(f.tuple(0), b"alpha");
    assert_eq!(f.tuple(1), b"beta");
}

/// One windowed 1→1 hop: send a shared frame (keeping a clone, as the
/// superstep feed points do), drain the receiver on this thread while the
/// sender finishes on another.
fn hop(
    counters: &ClusterCounters,
    frame: SharedFrame,
) -> Vec<SharedFrame> {
    let (mut txs, mut rxs) = reliable_channels(1, 1, Some(4));
    let mut tx = ReliableSender::new(txs.remove(0), "msg", 0, 0, vec![1], counters.clone());
    let mut rx = ReliableReceiver::new(rxs.remove(0), counters.clone());
    let sender = std::thread::spawn(move || {
        tx.send_shared(0, frame).unwrap();
        tx.finish().unwrap();
    });
    let mut got = Vec::new();
    while let Some(f) = rx.next_frame().unwrap() {
        got.push(f);
    }
    sender.join().unwrap();
    got
}

/// Clean hop: the delivered frame aliases the sender's slab slice and the
/// whole exchange copies zero frame bytes.
#[test]
fn clean_hop_delivers_the_senders_slice_and_copies_nothing() {
    let guard = fault::exclusive();
    let counters = ClusterCounters::new();
    let slab = BytesSlab::with_counters(1 << 16, counters.clone());
    let frame = build(&[b"payload".to_vec()]).freeze(&slab);
    let got = hop(&counters, frame.clone());
    guard.clear();
    assert_eq!(got.len(), 1);
    assert!(got[0].aliases(&frame), "delivery must hand over the sender's slice");
    assert_eq!(counters.frame_bytes_copied(), 0, "zero-copy clean path");
    assert_eq!(counters.frames_retransmitted(), 0);
}

/// Drop the first transmit: the retransmission re-sends the *identical*
/// slab slice (provable because the delivered frame still aliases the
/// clone we kept), and still nothing is copied.
#[test]
fn retransmission_resends_the_identical_slab_slice() {
    let guard = fault::exclusive();
    let counters = ClusterCounters::new();
    let slab = BytesSlab::with_counters(1 << 16, counters.clone());
    let frame = build(&[b"retry me".to_vec()]).freeze(&slab);
    let plan = guard.install(FaultPlan::new().on(Site::FrameSend, "msg", 1, Fault::DropFrame));
    let got = hop(&counters, frame.clone());
    assert_eq!(plan.injected(), 1, "the drop must actually fire");
    guard.clear();
    assert_eq!(got.len(), 1);
    assert!(
        got[0].aliases(&frame),
        "the retransmitted frame must be the same slab slice, not a re-encode"
    );
    assert_eq!(counters.frames_retransmitted(), 1);
    assert_eq!(counters.frame_bytes_copied(), 0, "retransmission copies nothing");
}

/// Corrupt the first transmit: the receiver's CRC gate rejects the overlaid
/// slice, recovery delivers the pristine one, and the corruption was a
/// copy-on-write overlay — zero bytes copied end to end.
#[test]
fn corruption_recovery_delivers_the_pristine_slice_without_copying() {
    let guard = fault::exclusive();
    let counters = ClusterCounters::new();
    let slab = BytesSlab::with_counters(1 << 16, counters.clone());
    let frame = build(&[b"pristine".to_vec()]).freeze(&slab);
    let plan = guard.install(FaultPlan::new().on(Site::FrameSend, "msg", 1, Fault::CorruptFrame));
    let got = hop(&counters, frame.clone());
    assert_eq!(plan.injected(), 1);
    guard.clear();
    assert_eq!(got.len(), 1);
    assert!(got[0].aliases(&frame));
    assert!(!got[0].has_overlay(), "the delivered frame is the pristine slice");
    assert_eq!(counters.frames_corrupted(), 1);
    assert_eq!(counters.frames_retransmitted(), 1);
    assert_eq!(counters.frame_bytes_copied(), 0, "COW corruption copies nothing");
}

// ---------------------------------------------------------------------------
// Exact slab accounting
// ---------------------------------------------------------------------------

/// Pin the pool arithmetic exactly: K freezes with an empty stock cost K
/// fresh allocations; dropping the slices and harvesting recycles all K;
/// the next K freezes are then allocation-free.
#[test]
fn slab_counters_account_exactly() {
    const K: usize = 5;
    let counters = ClusterCounters::new();
    let slab = BytesSlab::with_counters(1 << 12, counters.clone());

    let frames: Vec<SharedFrame> =
        (0..K).map(|i| build(&[vec![i as u8; 32]]).freeze(&slab)).collect();
    assert_eq!(counters.slab_allocations(), K as u64, "one fresh backing per freeze");
    assert_eq!(counters.slab_recycled(), 0);

    drop(frames);
    assert_eq!(slab.harvest(), K, "every dropped backing is harvestable");
    assert_eq!(counters.slab_recycled(), K as u64);
    assert_eq!(slab.stocked(), K);

    let again: Vec<SharedFrame> =
        (0..K).map(|i| build(&[vec![i as u8; 32]]).freeze(&slab)).collect();
    assert_eq!(counters.slab_allocations(), K as u64, "warm freezes reuse the stock");
    drop(again);
}

// ---------------------------------------------------------------------------
// Whole-job pins: zero copies, deterministic slab counters under faults
// ---------------------------------------------------------------------------

fn chain(start: u64, len: u64) -> Vec<(u64, Vec<(u64, f64)>)> {
    (0..len)
        .map(|i| {
            let vid = start + i;
            let mut edges = Vec::new();
            if i > 0 {
                edges.push((vid - 1, 1.0));
            }
            if i + 1 < len {
                edges.push((vid + 1, 1.0));
            }
            (vid, edges)
        })
        .collect()
}

fn two_chains() -> Vec<(u64, Vec<(u64, f64)>)> {
    let mut records = chain(0, 8);
    records.extend(chain(100, 6));
    records
}

fn cc_values(graph: &LoadedGraph) -> Vec<(u64, u64)> {
    graph
        .collect_vertices::<ConnectedComponents>()
        .unwrap()
        .into_iter()
        .map(|v| (v.vid, v.value))
        .collect()
}

fn run_cc(job: &PregelixJob, records: &[(u64, Vec<(u64, f64)>)]) -> (JobSummary, Vec<(u64, u64)>) {
    let cluster = Cluster::new(ClusterConfig::new(2, 8 << 20)).unwrap();
    let program = Arc::new(ConnectedComponents);
    let (summary, graph) =
        run_job_from_records(&cluster, &program, job, records.to_vec()).unwrap();
    let values = cc_values(&graph);
    (summary, values)
}

/// A clean job moves every message through the slab path without copying a
/// single frame byte, and its slab counters are identical across runs.
#[test]
fn clean_job_copies_zero_frame_bytes_and_is_deterministic() {
    let guard = fault::exclusive();
    let records = two_chains();
    let job = PregelixJob::new("zc-clean");
    let (a, values_a) = run_cc(&job, &records);
    let (b, values_b) = run_cc(&job, &records);
    guard.clear();

    assert_eq!(a.stats.frame_bytes_copied, 0, "clean path must be zero-copy");
    assert!(a.stats.slab_allocations > 0, "messages must ride the slab");
    assert!(a.stats.slab_recycled > 0, "window commits must recycle backings");
    assert_eq!(
        (a.stats.slab_allocations, a.stats.slab_recycled, a.stats.frame_bytes_copied),
        (b.stats.slab_allocations, b.stats.slab_recycled, b.stats.frame_bytes_copied),
        "slab counters must be interleaving-invariant across identical runs"
    );
    assert_eq!(values_a, values_b);
}

/// Drop / duplicate / corrupt sweeps: faults absorbed in place never charge
/// `frame_bytes_copied`, and the slab counters stay deterministic across a
/// double run of the identical faulted scenario.
#[test]
fn faulted_jobs_stay_zero_copy_with_deterministic_slab_counters() {
    let guard = fault::exclusive();
    let records = two_chains();
    let job = PregelixJob::new("zc-faults");
    let (_clean, expected) = run_cc(&job, &records);

    for (name, fault) in [
        ("drop", Fault::DropFrame),
        ("dup", Fault::DuplicateFrame),
        ("corrupt", Fault::CorruptFrame),
    ] {
        let mut seen = Vec::new();
        for _ in 0..2 {
            let plan = guard
                .install(FaultPlan::new().on(Site::FrameSend, "msg", 2, fault.clone()));
            let (summary, values) = run_cc(&job, &records);
            let injected = plan.injected();
            guard.clear();
            assert!(injected >= 1, "{name}: the sweep must inject");
            assert_eq!(summary.recoveries, 0, "{name}: absorbed in place");
            assert_eq!(values, expected, "{name}: values must be bit-identical");
            assert_eq!(
                summary.stats.frame_bytes_copied, 0,
                "{name}: wire faults must not force copies"
            );
            seen.push((
                summary.stats.slab_allocations,
                summary.stats.slab_recycled,
                summary.stats.frames_retransmitted,
                summary.stats.frames_deduped,
                summary.stats.frames_corrupted,
            ));
        }
        assert_eq!(seen[0], seen[1], "{name}: counters must repeat exactly across runs");
    }
}
