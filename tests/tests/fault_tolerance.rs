//! Checkpointing and recovery (§5.5) under injected worker failures.

use pregelix::graphgen::btc;
use pregelix::prelude::*;
use std::sync::Arc;

fn reference_cc(records: &[(u64, Vec<(u64, f64)>)]) -> std::collections::HashMap<u64, u64> {
    let adjacency: Vec<(u64, Vec<u64>)> = records
        .iter()
        .map(|(v, e)| (*v, e.iter().map(|(d, _)| *d).collect()))
        .collect();
    pregelix::algorithms::connected_components::reference_components(&adjacency)
}

#[test]
fn job_recovers_from_mid_run_worker_failure() {
    let records = btc::btc(6_000, 5.0, 50);
    let expected = reference_cc(&records);
    let cluster = Arc::new(Cluster::new(ClusterConfig::new(4, 8 << 20)).unwrap());
    let job = PregelixJob::new("ft-cc").with_checkpoint_interval(1);
    let program = Arc::new(ConnectedComponents);
    let mut graph =
        LoadedGraph::load_from_records(&cluster, &program, &job, records.clone()).unwrap();

    // Power off worker 2 shortly after the job starts.
    let saboteur = {
        let cluster = Arc::clone(&cluster);
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(60));
            cluster.fail_worker(2);
        })
    };
    let summary = graph.run(&cluster, &program, &job).unwrap();
    saboteur.join().unwrap();

    assert!(summary.recoveries >= 1, "failure must have triggered recovery");
    assert_eq!(cluster.alive_workers(), vec![0, 1, 3]);
    for v in graph.collect_vertices::<ConnectedComponents>().unwrap() {
        assert_eq!(v.value, expected[&v.vid], "vid {}", v.vid);
    }
}

#[test]
fn failure_without_checkpoints_surfaces_the_error() {
    let records = btc::btc(6_000, 5.0, 51);
    let cluster = Arc::new(Cluster::new(ClusterConfig::new(4, 8 << 20)).unwrap());
    let job = PregelixJob::new("ft-nockpt"); // no checkpoint interval
    let program = Arc::new(ConnectedComponents);
    let mut graph =
        LoadedGraph::load_from_records(&cluster, &program, &job, records).unwrap();
    let saboteur = {
        let cluster = Arc::clone(&cluster);
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(40));
            cluster.fail_worker(1);
        })
    };
    let result = graph.run(&cluster, &program, &job);
    saboteur.join().unwrap();
    match result {
        Err(e) => assert!(e.is_recoverable(), "should surface the worker failure: {e}"),
        // Timing race: the job may legitimately finish before the
        // sabotage lands; detect and accept that.
        Ok(summary) => assert_eq!(summary.recoveries, 0),
    }
}

#[test]
fn recovery_works_with_left_outer_join_plans_too() {
    // LOJ recovery must restore the Vid index from the checkpoint.
    let records = btc::btc(6_000, 5.0, 52);
    let expected = reference_cc(&records);
    let cluster = Arc::new(Cluster::new(ClusterConfig::new(4, 8 << 20)).unwrap());
    let job = PregelixJob::new("ft-loj")
        .with_join(JoinStrategy::LeftOuter)
        .with_checkpoint_interval(1);
    let program = Arc::new(ConnectedComponents);
    let mut graph =
        LoadedGraph::load_from_records(&cluster, &program, &job, records.clone()).unwrap();
    let saboteur = {
        let cluster = Arc::clone(&cluster);
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(60));
            cluster.fail_worker(3);
        })
    };
    let summary = graph.run(&cluster, &program, &job).unwrap();
    saboteur.join().unwrap();
    assert!(summary.recoveries >= 1);
    for v in graph.collect_vertices::<ConnectedComponents>().unwrap() {
        assert_eq!(v.value, expected[&v.vid]);
    }
}

#[test]
fn repeated_failures_keep_recovering_until_one_worker_remains() {
    let records = btc::btc(4_000, 5.0, 53);
    let expected = reference_cc(&records);
    let cluster = Arc::new(Cluster::new(ClusterConfig::new(3, 8 << 20)).unwrap());
    let job = PregelixJob::new("ft-repeat").with_checkpoint_interval(1);
    let program = Arc::new(ConnectedComponents);
    let mut graph =
        LoadedGraph::load_from_records(&cluster, &program, &job, records.clone()).unwrap();
    let saboteur = {
        let cluster = Arc::clone(&cluster);
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            cluster.fail_worker(0);
            std::thread::sleep(std::time::Duration::from_millis(80));
            cluster.fail_worker(1);
        })
    };
    let summary = graph.run(&cluster, &program, &job).unwrap();
    saboteur.join().unwrap();
    assert_eq!(cluster.alive_workers(), vec![2]);
    assert!(summary.recoveries >= 1);
    for v in graph.collect_vertices::<ConnectedComponents>().unwrap() {
        assert_eq!(v.value, expected[&v.vid]);
    }
}

#[test]
fn checkpoint_files_are_cleared_after_run_job() {
    let records = btc::btc(1_000, 4.0, 54);
    let cluster = Cluster::new(ClusterConfig::new(2, 8 << 20)).unwrap();
    pregelix::graphgen::text::write_to_dfs(cluster.dfs(), "input/ckpt-clear", &records)
        .unwrap();
    let job = PregelixJob::new("ckpt-clear")
        .with_io("input/ckpt-clear", "output/ckpt-clear")
        .with_checkpoint_interval(1);
    let program = Arc::new(ConnectedComponents);
    run_job(&cluster, &program, &job).unwrap();
    assert!(cluster
        .dfs()
        .list("jobs/ckpt-clear/ckpt-manifests")
        .unwrap()
        .is_empty());
}
