//! Checkpointing and recovery (§5.5, §5.7) under *deterministic* injected
//! faults.
//!
//! Every scenario here drives the failure manager through the
//! [`pregelix::common::fault`] harness: faults fire at exact event counts
//! (a superstep barrier, the nth write of a named file, the first frame of
//! a labeled connector stream), never on a timer. Each test therefore
//! asserts *exact* recovery/retry counts and bit-identical final vertex
//! values against a no-fault reference run — not the "recovered at least
//! once, values look right" a sleep-based saboteur could support.
//!
//! Every test holds [`fault::exclusive`], which serializes the whole binary
//! within the process and uninstalls any plan on drop — even plan-free
//! tests take it, since barrier scopes are bare superstep numbers that any
//! concurrent job could otherwise consume. When the
//! `CHAOS_DIGEST` env var names a file, each scenario appends its
//! deterministic counters to it; CI runs the suite twice and diffs the two
//! digests to prove end-to-end determinism.

use pregelix::common::error::{PregelixError, Result};
use pregelix::common::fault::{self, Fault, FaultPlan, Site};
use pregelix::graphgen::btc;
use pregelix::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// A chain component `start — start+1 — … — start+len-1` (symmetric edges).
/// Min-label CC over a chain of length `L` takes exactly `L + 1` supersteps
/// (the label walks one hop per superstep, plus one quiet superstep to
/// halt), which makes superstep counts predictable for barrier targeting.
fn chain(start: u64, len: u64) -> Vec<(u64, Vec<(u64, f64)>)> {
    (0..len)
        .map(|i| {
            let vid = start + i;
            let mut edges = Vec::new();
            if i > 0 {
                edges.push((vid - 1, 1.0));
            }
            if i + 1 < len {
                edges.push((vid + 1, 1.0));
            }
            (vid, edges)
        })
        .collect()
}

/// Two chain components: min labels 0 and 100. 9 supersteps total.
fn two_chains() -> Vec<(u64, Vec<(u64, f64)>)> {
    let mut records = chain(0, 8);
    records.extend(chain(100, 6));
    records
}

fn reference_cc(records: &[(u64, Vec<(u64, f64)>)]) -> std::collections::HashMap<u64, u64> {
    let adjacency: Vec<(u64, Vec<u64>)> = records
        .iter()
        .map(|(v, e)| (*v, e.iter().map(|(d, _)| *d).collect()))
        .collect();
    pregelix::algorithms::connected_components::reference_components(&adjacency)
}

/// The final `(vid, value)` relation, sorted by vid — the bit-identical
/// comparison unit between faulted and no-fault runs.
fn cc_values(graph: &LoadedGraph) -> Vec<(u64, u64)> {
    graph
        .collect_vertices::<ConnectedComponents>()
        .unwrap()
        .into_iter()
        .map(|v| (v.vid, v.value))
        .collect()
}

/// Run `job` over `records` on a fresh cluster with no faults installed;
/// returns the reference summary and values. Callers do this *before*
/// installing their plan (the chaos guard is already held).
fn no_fault_reference(
    workers: usize,
    job: &PregelixJob,
    records: &[(u64, Vec<(u64, f64)>)],
) -> (JobSummary, Vec<(u64, u64)>) {
    let cluster = Cluster::new(ClusterConfig::new(workers, 8 << 20)).unwrap();
    let program = Arc::new(ConnectedComponents);
    let (summary, graph) =
        run_job_from_records(&cluster, &program, job, records.to_vec()).unwrap();
    assert_eq!(summary.recoveries, 0);
    assert_eq!(summary.retries, 0);
    let values = cc_values(&graph);
    (summary, values)
}

/// FNV-1a over the value relation: a compact stand-in for "bit-identical
/// final state" in the chaos digest.
fn values_hash(values: &[(u64, u64)]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for (vid, val) in values {
        for b in vid.to_le_bytes().into_iter().chain(val.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Append one deterministic line per scenario to `$CHAOS_DIGEST`, if set.
/// Everything in the line must be reproducible across identical runs:
/// counters and value hashes, never durations.
fn chaos_digest(scenario: &str, summary: &JobSummary, injected: u64, values: &[(u64, u64)]) {
    let Ok(path) = std::env::var("CHAOS_DIGEST") else {
        return;
    };
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .unwrap();
    writeln!(
        f,
        "{scenario} recoveries={} retries={} supersteps={} injected={injected} \
         probes={} redesc={} bloomneg={} bloomfp={} radixn={} rskip={} cmpfb={} \
         fadv={} bwa={} skew={} conf={} cfb={} logw={} logr={} ckret={} \
         slaba={} slabr={} fcopy={} jcmp={} jmsgs={} jcomb={} values={:016x}",
        summary.recoveries,
        summary.retries,
        summary.supersteps,
        summary.stats.probe_leaf_hits,
        summary.stats.probe_redescents,
        summary.stats.bloom_negatives,
        summary.stats.bloom_false_positives,
        summary.stats.radix_sort_entries,
        summary.stats.radix_passes_skipped,
        summary.stats.sort_comparison_fallbacks,
        summary.stats.frontier_advances,
        summary.stats.barrier_waits_avoided,
        summary.stats.max_partition_skew,
        summary.stats.confined_recoveries,
        summary.stats.confined_fallbacks,
        summary.stats.log_bytes_written,
        summary.stats.log_runs_replayed,
        summary.stats.ckpt_bytes_retired,
        summary.stats.slab_allocations,
        summary.stats.slab_recycled,
        summary.stats.frame_bytes_copied,
        summary.job_stats.compute_calls,
        summary.job_stats.messages_sent,
        summary.job_stats.messages_combined,
        values_hash(values),
    )
    .unwrap();
}

// ---------------------------------------------------------------------------
// Worker failure at exact superstep boundaries
// ---------------------------------------------------------------------------

/// The tentpole sweep: power off a worker at the barrier before *every*
/// superstep of the job, one run per superstep, and require exactly one
/// recovery and bit-identical final values every time.
#[test]
fn worker_failure_at_every_superstep_recovers_to_identical_values() {
    let guard = fault::exclusive();
    let records = two_chains();
    let job = PregelixJob::new("ft-sweep").with_checkpoint_interval(1);
    let (reference, expected) = no_fault_reference(4, &job, &records);
    let total = reference.supersteps;
    assert!(total >= 5, "chain graph should take several supersteps, got {total}");

    let program = Arc::new(ConnectedComponents);
    for ss in 1..=total {
        let plan = guard.install(FaultPlan::new().on(
            Site::Barrier,
            &ss.to_string(),
            1,
            Fault::FailWorker(2),
        ));
        let cluster = Cluster::new(ClusterConfig::new(4, 8 << 20)).unwrap();
        let (summary, graph) =
            run_job_from_records(&cluster, &program, &job, records.clone()).unwrap();
        assert_eq!(summary.recoveries, 1, "exactly one recovery at superstep {ss}");
        assert_eq!(summary.retries, 0, "worker loss is not an in-place retry");
        assert_eq!(plan.injected(), 1, "superstep {ss}");
        assert_eq!(cluster.alive_workers(), vec![0, 1, 3]);
        assert_eq!(
            summary.stats.workers_declared_dead, 1,
            "the failure detector formally declared worker 2 dead"
        );
        assert_eq!(cc_values(&graph), expected, "values after failure at superstep {ss}");
        chaos_digest(&format!("sweep-ss{ss}"), &summary, plan.injected(), &expected);
        guard.clear();
    }
}

/// A second failure while the first recovery is still in progress: the
/// first manifest read of the recovery fails (transiently), the failure
/// manager loops, and the second recovery attempt succeeds. Exactly two
/// recoveries, same final values.
#[test]
fn double_failure_during_recovery_recovers_twice() {
    let guard = fault::exclusive();
    let records = two_chains();
    let job = PregelixJob::new("ft-double").with_checkpoint_interval(1);
    let (_, expected) = no_fault_reference(4, &job, &records);

    let plan = guard.install(
        FaultPlan::new()
            .on(Site::Barrier, "3", 1, Fault::FailWorker(1))
            .on(Site::DfsRead, "jobs/ft-double/ckpt-manifests", 1, Fault::IoError),
    );
    let cluster = Cluster::new(ClusterConfig::new(4, 8 << 20)).unwrap();
    let program = Arc::new(ConnectedComponents);
    let (summary, graph) =
        run_job_from_records(&cluster, &program, &job, records.clone()).unwrap();
    assert_eq!(summary.recoveries, 2, "failed recovery + successful recovery");
    assert_eq!(plan.injected(), 2);
    assert_eq!(cc_values(&graph), expected);
    chaos_digest("double-failure", &summary, plan.injected(), &expected);
}

/// Without checkpoints there is nothing to recover from: the worker
/// failure must surface to the caller as the original recoverable error,
/// not hang or panic.
#[test]
fn failure_without_checkpoints_surfaces_the_error() {
    let guard = fault::exclusive();
    let records = two_chains();
    let job = PregelixJob::new("ft-nockpt"); // no checkpoint interval
    guard.install(FaultPlan::new().on(Site::Barrier, "2", 1, Fault::FailWorker(1)));
    let cluster = Cluster::new(ClusterConfig::new(4, 8 << 20)).unwrap();
    let program = Arc::new(ConnectedComponents);
    let err = run_job_from_records(&cluster, &program, &job, records).unwrap_err();
    assert!(
        matches!(err, PregelixError::WorkerDead { id: 1 }),
        "the original failure surfaces: {err}"
    );
    assert!(err.is_recoverable());
}

// ---------------------------------------------------------------------------
// Failures during checkpoint writes
// ---------------------------------------------------------------------------

/// A checkpoint-write failure with in-place retries disabled consumes a
/// full checkpoint recovery: the job replays from the newest *complete*
/// checkpoint (the failed one never got its manifest) and still converges
/// to identical values.
#[test]
fn checkpoint_write_failure_without_retries_forces_recovery() {
    let guard = fault::exclusive();
    let records = two_chains();
    let job = PregelixJob::new("ft-cw")
        .with_checkpoint_interval(1)
        .with_io_retries(0);
    let (_, expected) = no_fault_reference(4, &job, &records);

    let plan = guard.install(FaultPlan::new().on(
        Site::DfsWrite,
        "jobs/ft-cw/ckpt/3",
        1,
        Fault::IoError,
    ));
    let cluster = Cluster::new(ClusterConfig::new(4, 8 << 20)).unwrap();
    let program = Arc::new(ConnectedComponents);
    let (summary, graph) =
        run_job_from_records(&cluster, &program, &job, records.clone()).unwrap();
    assert_eq!(summary.recoveries, 1);
    assert_eq!(summary.retries, 0, "io_retries(0) must not retry in place");
    assert_eq!(plan.injected(), 1);
    assert_eq!(cluster.alive_workers(), vec![0, 1, 2, 3], "no worker died");
    assert_eq!(cc_values(&graph), expected);
    chaos_digest("ckpt-write-recovery", &summary, plan.injected(), &expected);
}

/// The same transient fault with default `io_retries` is absorbed by the
/// in-place retry (§5.7): one retry, zero recoveries.
#[test]
fn transient_checkpoint_write_failure_is_absorbed_by_retry() {
    let guard = fault::exclusive();
    let records = two_chains();
    let job = PregelixJob::new("ft-cwr").with_checkpoint_interval(1); // default retries
    let (_, expected) = no_fault_reference(4, &job, &records);

    let plan = guard.install(FaultPlan::new().on(
        Site::DfsWrite,
        "jobs/ft-cwr/ckpt/3",
        1,
        Fault::IoError,
    ));
    let cluster = Cluster::new(ClusterConfig::new(4, 8 << 20)).unwrap();
    let program = Arc::new(ConnectedComponents);
    let (summary, graph) =
        run_job_from_records(&cluster, &program, &job, records.clone()).unwrap();
    assert_eq!(summary.recoveries, 0, "the retry absorbs the transient fault");
    assert_eq!(summary.retries, 1);
    assert_eq!(plan.injected(), 1);
    assert_eq!(cc_values(&graph), expected);
    chaos_digest("ckpt-write-retry", &summary, plan.injected(), &expected);
}

/// A torn manifest write (a crash mid-write leaves a 5-byte prefix at the
/// real path): recovery must reject the torn manifest and fall back to the
/// previous complete checkpoint rather than failing the job or trusting
/// garbage.
#[test]
fn torn_manifest_falls_back_to_previous_checkpoint() {
    let guard = fault::exclusive();
    let records = two_chains();
    let job = PregelixJob::new("ft-torn")
        .with_checkpoint_interval(1)
        .with_io_retries(0);
    let (reference, expected) = no_fault_reference(4, &job, &records);
    assert!(reference.supersteps >= 4, "need superstep 4's checkpoint to exist");

    let plan = guard.install(FaultPlan::new().on(
        Site::DfsWrite,
        "jobs/ft-torn/ckpt-manifests/4",
        1,
        Fault::TornWrite { keep: 5 },
    ));
    let cluster = Cluster::new(ClusterConfig::new(4, 8 << 20)).unwrap();
    let program = Arc::new(ConnectedComponents);
    let (summary, graph) =
        run_job_from_records(&cluster, &program, &job, records.clone()).unwrap();
    assert_eq!(summary.recoveries, 1, "recovered past the torn manifest");
    assert_eq!(plan.injected(), 1);
    assert_eq!(summary.supersteps, reference.supersteps);
    assert_eq!(cc_values(&graph), expected);
    chaos_digest("torn-manifest", &summary, plan.injected(), &expected);
}

// ---------------------------------------------------------------------------
// Storage and connector fault sites
// ---------------------------------------------------------------------------

/// An I/O error while writing the partition-local Msg run mid-superstep is
/// recoverable infrastructure failure: one recovery, no worker lost,
/// identical values.
#[test]
fn msg_run_write_failure_recovers_without_losing_a_worker() {
    let guard = fault::exclusive();
    let records = two_chains();
    let job = PregelixJob::new("ft-rw").with_checkpoint_interval(1);
    let (_, expected) = no_fault_reference(1, &job, &records);

    let plan = guard.install(FaultPlan::new().on(
        Site::RunWrite,
        "msg-ft-rw-p0",
        1,
        Fault::IoError,
    ));
    let cluster = Cluster::new(ClusterConfig::new(1, 8 << 20)).unwrap();
    let program = Arc::new(ConnectedComponents);
    let (summary, graph) =
        run_job_from_records(&cluster, &program, &job, records.clone()).unwrap();
    assert_eq!(summary.recoveries, 1);
    assert_eq!(plan.injected(), 1);
    assert_eq!(cluster.alive_workers(), vec![0]);
    assert_eq!(cc_values(&graph), expected);
    chaos_digest("msg-run-write", &summary, plan.injected(), &expected);
}

/// A dropped global-state frame is *absorbed by the transport*: the
/// receiver's gap nack triggers exactly one retransmission, the job
/// completes with zero recoveries, and the global halt decision is
/// computed from complete reports — bit-identical to the no-fault run.
#[test]
fn dropped_gs_frame_is_retransmitted_not_fatal() {
    let guard = fault::exclusive();
    let records = two_chains();
    let job = PregelixJob::new("ft-gs");
    let (reference, expected) = no_fault_reference(4, &job, &records);

    let plan = guard.install(FaultPlan::new().on(Site::FrameSend, "gs", 1, Fault::DropFrame));
    let cluster = Cluster::new(ClusterConfig::new(4, 8 << 20)).unwrap();
    let program = Arc::new(ConnectedComponents);
    let (summary, graph) =
        run_job_from_records(&cluster, &program, &job, records.clone()).unwrap();
    assert_eq!(summary.recoveries, 0, "wire loss never consumes a recovery");
    assert_eq!(plan.injected(), 1);
    assert!(
        summary.stats.frames_retransmitted >= 1,
        "the dropped report frame was retransmitted"
    );
    assert_eq!(summary.supersteps, reference.supersteps);
    assert_eq!(cc_values(&graph), expected);
    chaos_digest("drop-gs-frame", &summary, plan.injected(), &expected);
}

/// A dropped run-handle in the materialized (merging) connector is
/// recovered from the connector's control plane at sender disconnect:
/// zero recoveries, one logical retransmission, identical values.
#[test]
fn dropped_merge_handle_is_recovered_in_place() {
    let guard = fault::exclusive();
    let records = two_chains();
    let job = PregelixJob::new("ft-merge").with_groupby(GroupByStrategy::SortMerged);
    let (_, expected) = no_fault_reference(2, &job, &records);

    let plan = guard.install(FaultPlan::new().on(Site::FrameSend, "merge", 1, Fault::DropFrame));
    let cluster = Cluster::new(ClusterConfig::new(2, 8 << 20)).unwrap();
    let program = Arc::new(ConnectedComponents);
    let (summary, graph) =
        run_job_from_records(&cluster, &program, &job, records.clone()).unwrap();
    assert_eq!(summary.recoveries, 0);
    assert_eq!(plan.injected(), 1);
    assert!(summary.stats.frames_retransmitted >= 1, "handle redelivered");
    assert_eq!(cc_values(&graph), expected);
    chaos_digest("drop-merge-handle", &summary, plan.injected(), &expected);
}

/// A duplicated message frame is discarded by the receiver's sequence-number
/// dedup — combiner or not, delivery stays exactly-once: no recovery, the
/// dedup counter moves, values and superstep count are bit-identical.
#[test]
fn duplicated_msg_frame_is_deduplicated_by_seq() {
    let guard = fault::exclusive();
    let records = two_chains();
    let job = PregelixJob::new("ft-dup");
    let (reference, expected) = no_fault_reference(1, &job, &records);

    let plan =
        guard.install(FaultPlan::new().on(Site::FrameSend, "msg", 1, Fault::DuplicateFrame));
    let cluster = Cluster::new(ClusterConfig::new(1, 8 << 20)).unwrap();
    let program = Arc::new(ConnectedComponents);
    let (summary, graph) =
        run_job_from_records(&cluster, &program, &job, records.clone()).unwrap();
    assert_eq!(summary.recoveries, 0);
    assert_eq!(plan.injected(), 1);
    assert_eq!(summary.stats.frames_deduped, 1, "the echo was discarded by seq");
    assert_eq!(summary.supersteps, reference.supersteps);
    assert_eq!(cc_values(&graph), expected);
    chaos_digest("dup-msg-frame", &summary, plan.injected(), &expected);
}

// ---------------------------------------------------------------------------
// Frontier-mode fault sweeps
// ---------------------------------------------------------------------------

/// The tentpole sweep rerun in frontier mode: kill a worker at the window
/// covering *every* superstep. Checkpoints land on window boundaries only
/// (interval 2 keeps the windows longer than one superstep, so gated
/// computes actually run), recovery validates the per-partition superstep
/// vector in the manifest, and every faulted run must converge to the
/// barrier-mode no-fault answer with exactly one recovery.
#[test]
fn frontier_worker_failure_at_every_superstep_recovers_to_barrier_answer() {
    let guard = fault::exclusive();
    let records = two_chains();
    let barrier_job = PregelixJob::new("ft-fr-sweep").with_checkpoint_interval(2);
    let (reference, expected) = no_fault_reference(4, &barrier_job, &records);
    let total = reference.supersteps;
    let job = PregelixJob::new("ft-fr-sweep")
        .with_checkpoint_interval(2)
        .with_execution_mode(ExecutionMode::Frontier);

    let program = Arc::new(ConnectedComponents);
    for ss in 1..=total {
        // In frontier mode the barrier fault site is probed once per
        // superstep a window covers, so a rule scoped to `ss` fires when
        // the window containing `ss` starts.
        let plan = guard.install(FaultPlan::new().on(
            Site::Barrier,
            &ss.to_string(),
            1,
            Fault::FailWorker(2),
        ));
        let cluster = Cluster::new(ClusterConfig::new(4, 8 << 20)).unwrap();
        let (summary, graph) =
            run_job_from_records(&cluster, &program, &job, records.clone()).unwrap();
        assert_eq!(summary.recoveries, 1, "exactly one recovery at superstep {ss}");
        assert_eq!(summary.retries, 0);
        assert_eq!(plan.injected(), 1, "superstep {ss}");
        assert_eq!(cluster.alive_workers(), vec![0, 1, 3]);
        assert_eq!(
            summary.supersteps, total,
            "frontier recovery must not shift the halting superstep"
        );
        assert!(
            summary.stats.frontier_advances > 0,
            "windows of 2 must gate compute starts (superstep {ss})"
        );
        assert!(
            summary.stats.barrier_waits_avoided > 0,
            "message-dense CC must advance early even across a recovery"
        );
        assert_eq!(cc_values(&graph), expected, "values after failure at superstep {ss}");
        chaos_digest(&format!("fr-sweep-ss{ss}"), &summary, plan.injected(), &expected);
        guard.clear();
    }
}

/// Checkpoint recovery *mid-skew*: a straggler stall pins partition 1 in
/// the window before a worker death. The checkpoint the recovery replays
/// from was written at a window boundary while frontier gates were live,
/// so its manifest's superstep vector must validate (all partitions
/// quiesced to the same superstep) and the replay must still converge to
/// the barrier answer.
#[test]
fn frontier_recovery_mid_skew_converges_to_barrier_answer() {
    let guard = fault::exclusive();
    let records = two_chains();
    let barrier_job = PregelixJob::new("ft-fr-skew").with_checkpoint_interval(2);
    let (reference, expected) = no_fault_reference(4, &barrier_job, &records);
    let job = PregelixJob::new("ft-fr-skew")
        .with_checkpoint_interval(2)
        .with_execution_mode(ExecutionMode::Frontier);

    let plan = guard.install(
        FaultPlan::new()
            .on(Site::Stall, "ft-fr-skew:s3:p1", 1, Fault::Stall { work: 2_000_000 })
            .on(Site::Barrier, "5", 1, Fault::FailWorker(2)),
    );
    let cluster = Cluster::new(ClusterConfig::new(4, 8 << 20)).unwrap();
    let program = Arc::new(ConnectedComponents);
    let (summary, graph) =
        run_job_from_records(&cluster, &program, &job, records.clone()).unwrap();
    assert_eq!(summary.recoveries, 1, "one recovery from the window-boundary checkpoint");
    assert_eq!(summary.retries, 0);
    assert_eq!(plan.injected(), 2, "the stall and the worker death both fired");
    assert_eq!(cluster.alive_workers(), vec![0, 1, 3]);
    assert_eq!(summary.supersteps, reference.supersteps);
    assert!(summary.stats.barrier_waits_avoided > 0);
    assert_eq!(cc_values(&graph), expected);
    chaos_digest("fr-mid-skew", &summary, plan.injected(), &expected);
}

// ---------------------------------------------------------------------------
// The §5.7 recoverability split, end to end
// ---------------------------------------------------------------------------

/// Min-label CC whose `compute` raises a *user* error the first time vertex
/// 0 runs at superstep 3, counting how often that poisoned invocation
/// executes.
struct FailingCc {
    raised: AtomicU64,
}

impl VertexProgram for FailingCc {
    type VertexValue = u64;
    type EdgeValue = ();
    type Message = u64;
    type Aggregate = ();

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<()> {
        if ctx.superstep() == 3 && ctx.vid() == 0 {
            self.raised.fetch_add(1, Ordering::Relaxed);
            return Err(PregelixError::user("deliberate UDF failure at superstep 3"));
        }
        let mut min_label = if ctx.superstep() == 1 {
            ctx.vid()
        } else {
            *ctx.value()
        };
        for m in ctx.messages() {
            min_label = min_label.min(*m);
        }
        if ctx.superstep() == 1 || min_label < *ctx.value() {
            ctx.set_value(min_label);
            ctx.send_message_to_all_edges(min_label);
        }
        ctx.vote_to_halt();
        Ok(())
    }

    fn init_vertex(&self, vid: u64, edges: Vec<(u64, f64)>) -> VertexData<Self> {
        VertexData::new(
            vid,
            vid,
            edges.into_iter().map(|(d, _)| Edge::new(d, ())).collect(),
        )
    }
}

/// A user-code error mid-superstep must NOT trigger checkpoint replay,
/// even with checkpointing on: §5.7 forwards application exceptions to the
/// end user. The poisoned `compute` runs exactly once — replaying it would
/// run it again (and, being deterministic, fail again forever).
#[test]
fn user_error_mid_superstep_is_forwarded_not_replayed() {
    let guard = fault::exclusive();
    // Plan installed but *empty*: proves the split holds with the injection
    // machinery active, and keeps concurrent tests from installing plans.
    guard.install(FaultPlan::new());
    let records = two_chains();
    let job = PregelixJob::new("ft-user").with_checkpoint_interval(1);
    let cluster = Cluster::new(ClusterConfig::new(4, 8 << 20)).unwrap();
    let program = Arc::new(FailingCc {
        raised: AtomicU64::new(0),
    });
    let err = run_job_from_records(&cluster, &program, &job, records).unwrap_err();
    assert!(
        matches!(&err, PregelixError::User(m) if m.contains("superstep 3")),
        "user error must surface untouched: {err}"
    );
    assert!(!err.is_recoverable());
    assert_eq!(
        program.raised.load(Ordering::Relaxed),
        1,
        "the failing compute must not be replayed from a checkpoint"
    );
}

// ---------------------------------------------------------------------------
// Plan coverage: LOJ recovery, clearing, determinism
// ---------------------------------------------------------------------------

/// LOJ recovery must restore the Vid live-vertex index from the checkpoint
/// (a BTC-style graph rather than chains, to exercise realistic fan-out).
#[test]
fn recovery_works_with_left_outer_join_plans_too() {
    let guard = fault::exclusive();
    let records = btc::btc(3_000, 5.0, 52);
    let expected = reference_cc(&records);
    let job = PregelixJob::new("ft-loj")
        .with_join(JoinStrategy::LeftOuter)
        .with_checkpoint_interval(1);
    guard.install(FaultPlan::new().on(Site::Barrier, "3", 1, Fault::FailWorker(3)));
    let cluster = Cluster::new(ClusterConfig::new(4, 8 << 20)).unwrap();
    let program = Arc::new(ConnectedComponents);
    let (summary, graph) =
        run_job_from_records(&cluster, &program, &job, records.clone()).unwrap();
    assert_eq!(summary.recoveries, 1);
    assert_eq!(cluster.alive_workers(), vec![0, 1, 2]);
    for v in graph.collect_vertices::<ConnectedComponents>().unwrap() {
        assert_eq!(v.value, expected[&v.vid], "vid {}", v.vid);
    }
}

#[test]
fn checkpoint_files_are_cleared_after_run_job() {
    // Holds the chaos lock even though it installs no plan: barrier-site
    // scopes are bare superstep numbers, so this job's supersteps would
    // otherwise consume a concurrently installed rule.
    let _guard = fault::exclusive();
    let records = btc::btc(1_000, 4.0, 54);
    let cluster = Cluster::new(ClusterConfig::new(2, 8 << 20)).unwrap();
    pregelix::graphgen::text::write_to_dfs(cluster.dfs(), "input/ckpt-clear", &records)
        .unwrap();
    let job = PregelixJob::new("ckpt-clear")
        .with_io("input/ckpt-clear", "output/ckpt-clear")
        .with_checkpoint_interval(1);
    let program = Arc::new(ConnectedComponents);
    run_job(&cluster, &program, &job).unwrap();
    assert!(cluster
        .dfs()
        .list("jobs/ckpt-clear/ckpt-manifests")
        .unwrap()
        .is_empty());
}

/// The determinism rule, verified in-process: the same plan over the same
/// job produces identical recovery counters, superstep counts, injection
/// counts, and final values on every run.
#[test]
fn identical_plans_produce_identical_recovery_counters() {
    let guard = fault::exclusive();
    let records = two_chains();
    let job = PregelixJob::new("ft-det").with_checkpoint_interval(1);
    let program = Arc::new(ConnectedComponents);

    let mut outcomes = Vec::new();
    for _ in 0..2 {
        let plan = guard.install(
            FaultPlan::new()
                .on(Site::Barrier, "3", 1, Fault::FailWorker(1))
                .on(Site::DfsRead, "jobs/ft-det/ckpt-manifests", 1, Fault::IoError),
        );
        let cluster = Cluster::new(ClusterConfig::new(4, 8 << 20)).unwrap();
        let (summary, graph) =
            run_job_from_records(&cluster, &program, &job, records.clone()).unwrap();
        outcomes.push((
            summary.recoveries,
            summary.retries,
            summary.supersteps,
            plan.injected(),
            cc_values(&graph),
        ));
        guard.clear();
    }
    assert_eq!(outcomes[0], outcomes[1], "two identical runs must not diverge");
    let summary_like = &outcomes[0];
    assert_eq!(summary_like.0, 2, "both runs recover exactly twice");
}
