//! Cross-crate invariant: every physical plan computes the same answer.
//!
//! §5.8 promises sixteen tailored executions of one logical plan; they
//! must be observationally identical. The e2e suite in
//! `pregelix-algorithms` checks PageRank; here SSSP and CC sweep all
//! sixteen plans, plus partition-count and worker-count variations.

use pregelix::graphgen::btc;
use pregelix::prelude::*;
use std::sync::Arc;

fn result_sssp(
    records: &[(u64, Vec<(u64, f64)>)],
    plan: PlanConfig,
    workers: usize,
    ppw: usize,
) -> Vec<(u64, f64)> {
    let cluster = Cluster::new(ClusterConfig::new(workers, 8 << 20)).unwrap();
    let job = PregelixJob::new(format!("pe-sssp-{}-{workers}-{ppw}", plan.label()))
        .with_plan(plan)
        .with_partitions_per_worker(ppw);
    let program = Arc::new(ShortestPaths::new(0));
    let (_s, graph) = run_job_from_records(&cluster, &program, &job, records.to_vec()).unwrap();
    graph
        .collect_vertices::<ShortestPaths>()
        .unwrap()
        .into_iter()
        .map(|v| (v.vid, v.value))
        .collect()
}

#[test]
fn sixteen_plans_agree_on_sssp() {
    let records = btc::btc(2_000, 6.0, 42);
    let mut baseline = None;
    for plan in PlanConfig::all() {
        let got = result_sssp(&records, plan, 3, 1);
        match &baseline {
            None => baseline = Some(got),
            Some(b) => assert_eq!(b, &got, "plan {} diverged", plan.label()),
        }
    }
}

#[test]
fn worker_and_partition_counts_do_not_change_results() {
    let records = btc::btc(1_500, 5.0, 43);
    let reference = result_sssp(&records, PlanConfig::default(), 1, 1);
    for (workers, ppw) in [(1, 2), (2, 1), (2, 2), (5, 1), (5, 3)] {
        let got = result_sssp(&records, PlanConfig::default(), workers, ppw);
        assert_eq!(reference, got, "workers={workers} ppw={ppw}");
    }
}

#[test]
fn cc_agrees_across_plans_and_matches_union_find() {
    let records = btc::btc(2_500, 3.0, 44);
    let adjacency: Vec<(u64, Vec<u64>)> = records
        .iter()
        .map(|(v, e)| (*v, e.iter().map(|(d, _)| *d).collect()))
        .collect();
    let expected =
        pregelix::algorithms::connected_components::reference_components(&adjacency);
    for plan in [
        PlanConfig::default(),
        PlanConfig {
            join: JoinStrategy::LeftOuter,
            groupby: GroupByStrategy::HashSortMerged,
            storage: VertexStorageKind::Lsm,
        },
        PlanConfig {
            join: JoinStrategy::FullOuter,
            groupby: GroupByStrategy::SortMerged,
            storage: VertexStorageKind::Lsm,
        },
    ] {
        let cluster = Cluster::new(ClusterConfig::new(4, 8 << 20)).unwrap();
        let job = PregelixJob::new(format!("pe-cc-{}", plan.label())).with_plan(plan);
        let program = Arc::new(ConnectedComponents);
        let (_s, graph) =
            run_job_from_records(&cluster, &program, &job, records.clone()).unwrap();
        for v in graph.collect_vertices::<ConnectedComponents>().unwrap() {
            assert_eq!(v.value, expected[&v.vid], "plan {} vid {}", plan.label(), v.vid);
        }
    }
}

#[test]
fn global_aggregate_is_plan_independent() {
    let records = btc::btc(1_200, 6.0, 45);
    let mut baseline: Option<Vec<u8>> = None;
    for plan in [
        PlanConfig::default(),
        PlanConfig {
            join: JoinStrategy::LeftOuter,
            ..PlanConfig::default()
        },
        PlanConfig {
            groupby: GroupByStrategy::HashSortMerged,
            ..PlanConfig::default()
        },
    ] {
        let cluster = Cluster::new(ClusterConfig::new(3, 8 << 20)).unwrap();
        let job = PregelixJob::new(format!("pe-tri-{}", plan.label())).with_plan(plan);
        let program = Arc::new(TriangleCount);
        let (summary, _g) =
            run_job_from_records(&cluster, &program, &job, records.clone()).unwrap();
        match &baseline {
            None => baseline = Some(summary.final_gs.aggregate.clone()),
            Some(b) => assert_eq!(b, &summary.final_gs.aggregate, "plan {}", plan.label()),
        }
    }
}
