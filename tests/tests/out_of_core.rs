//! Transparent out-of-core execution (§5.4): the same job must produce
//! identical results whether the graph fits in the buffer caches or not,
//! and the process-centric baselines must fail at memory points Pregelix
//! survives (the Figure 10 claim, as an assertion).

use pregelix::baselines::{
    Algorithm, BaselineConfig, BaselineEngine, GiraphEngine, GraphLabEngine,
};
use pregelix::graphgen::webmap;
use pregelix::prelude::*;
use std::sync::Arc;

fn pagerank_values(
    records: &[(u64, Vec<(u64, f64)>)],
    worker_ram: usize,
) -> (Vec<(u64, f64)>, pregelix::common::stats::StatsSnapshot) {
    let cluster = Cluster::new(ClusterConfig::new(4, worker_ram)).unwrap();
    let job = PregelixJob::new("ooc-pr");
    let program = Arc::new(PageRank::new(5));
    let (summary, graph) =
        run_job_from_records(&cluster, &program, &job, records.to_vec()).unwrap();
    let values = graph
        .collect_vertices::<PageRank>()
        .unwrap()
        .into_iter()
        .map(|v| (v.vid, v.value))
        .collect();
    (values, summary.stats)
}

#[test]
fn out_of_core_run_matches_in_memory_run_exactly() {
    let records = webmap::webmap(13, 6.0, 60);
    let (big, big_stats) = pagerank_values(&records, 64 << 20);
    let (small, small_stats) = pagerank_values(&records, 192 << 10);
    assert_eq!(big.len(), small.len());
    for ((v1, r1), (v2, r2)) in big.iter().zip(small.iter()) {
        assert_eq!(v1, v2);
        assert!((r1 - r2).abs() < 1e-12, "vid {v1}: {r1} vs {r2}");
    }
    // The small-memory run must actually have gone to disk.
    assert!(
        small_stats.cache_evictions > big_stats.cache_evictions,
        "tiny cache must evict: {} vs {}",
        small_stats.cache_evictions,
        big_stats.cache_evictions
    );
    assert!(small_stats.disk_read_bytes > big_stats.disk_read_bytes);
}

#[test]
fn pregelix_survives_where_giraph_and_graphlab_fail() {
    let records = webmap::webmap(14, 8.0, 61);
    let worker_ram = 256 << 10;

    // Baselines at this memory point: OOM.
    let giraph = GiraphEngine::in_memory().run(
        &records,
        Algorithm::PageRank { iterations: 3 },
        BaselineConfig {
            workers: 4,
            worker_ram,
        },
    );
    assert!(giraph.is_err(), "Giraph-mem should OOM here");
    let graphlab = GraphLabEngine::new().run(
        &records,
        Algorithm::PageRank { iterations: 3 },
        BaselineConfig {
            workers: 4,
            worker_ram,
        },
    );
    assert!(graphlab.is_err(), "GraphLab should OOM here");

    // Pregelix at the same point: completes, with correct results.
    let cluster = Cluster::new(ClusterConfig::new(4, worker_ram)).unwrap();
    let job = PregelixJob::new("ooc-survive");
    let program = Arc::new(PageRank::new(3));
    let (summary, graph) =
        run_job_from_records(&cluster, &program, &job, records.clone()).unwrap();
    assert_eq!(summary.supersteps, 4);
    let adjacency: Vec<(u64, Vec<u64>)> = records
        .iter()
        .map(|(v, e)| (*v, e.iter().map(|(d, _)| *d).collect()))
        .collect();
    let expected = pregelix::algorithms::pagerank::reference_pagerank(&adjacency, 0.85, 3);
    for (v, (evid, erank)) in graph
        .collect_vertices::<PageRank>()
        .unwrap()
        .iter()
        .zip(expected.iter())
    {
        assert_eq!(v.vid, *evid);
        assert!((v.value - erank).abs() < 1e-9);
    }
}

#[test]
fn groupby_spills_when_message_volume_exceeds_budget() {
    // A dense graph at tiny RAM: the sort-based group-by must spill runs.
    let records = webmap::webmap(13, 12.0, 62);
    let (_vals, stats) = pagerank_values(&records, 96 << 10);
    assert!(
        stats.sort_runs_spilled > 0,
        "message combination should have spilled: {stats:?}"
    );
}
