//! Confined recovery (§5.5): sender-side message logging with
//! partition-scoped checkpoint replay, differentially against both the
//! global rollback path and fault-free runs.
//!
//! The contract under test: when a worker dies cleanly at a superstep
//! boundary and the message logs are intact, the failure manager reloads
//! and replays ONLY the dead worker's partitions — survivors stay hot —
//! and the job still produces *bit-identical* vertex values, halting
//! superstep, and final global state as (a) the same failure recovered
//! through the global rollback (`with_confined_recovery(false)`) and (b) a
//! run with no failure at all. Any log hole must trip the typed
//! `ConfinedRecoveryUnavailable` fallback (counted in `confined_fallbacks`)
//! rather than corrupt anything.
//!
//! Every test holds [`fault::exclusive`] (barrier scopes are bare superstep
//! numbers any concurrent job could consume). With `CHAOS_DIGEST` set, each
//! scenario appends its deterministic counters; CI runs the suite twice and
//! diffs the digests.

use pregelix::common::error::PregelixError;
use pregelix::common::fault::{self, Fault, FaultPlan, Site};
use pregelix::graphgen::btc;
use pregelix::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// A chain component `start — … — start+len-1` (symmetric edges).
fn chain(start: u64, len: u64) -> Vec<(u64, Vec<(u64, f64)>)> {
    (0..len)
        .map(|i| {
            let vid = start + i;
            let mut edges = Vec::new();
            if i > 0 {
                edges.push((vid - 1, 1.0));
            }
            if i + 1 < len {
                edges.push((vid + 1, 1.0));
            }
            (vid, edges)
        })
        .collect()
}

/// Two chain components (min labels 0 and 100): long enough that a death at
/// superstep 4 happens after real work, small enough for CI.
fn two_chains() -> Vec<(u64, Vec<(u64, f64)>)> {
    let mut records = chain(0, 8);
    records.extend(chain(100, 6));
    records
}

/// Run `program` over `records` on a fresh 4-worker cluster; returns the
/// summary and the `(vid, value-bits)` relation sorted by vid. f64 values
/// compare via `to_bits`, so "equal" means bit-equal.
fn run_case<P, F>(
    program: &Arc<P>,
    job: &PregelixJob,
    records: &[(u64, Vec<(u64, f64)>)],
    to_bits: &F,
) -> (JobSummary, Vec<(u64, u64)>)
where
    P: VertexProgram,
    F: Fn(&P::VertexValue) -> u64,
{
    let cluster = Cluster::new(ClusterConfig::new(4, 8 << 20)).unwrap();
    let (summary, graph) =
        run_job_from_records(&cluster, program, job, records.to_vec()).unwrap();
    let mut values: Vec<(u64, u64)> = graph
        .collect_vertices::<P>()
        .unwrap()
        .into_iter()
        .map(|v| (v.vid, to_bits(&v.value)))
        .collect();
    values.sort_unstable_by_key(|(vid, _)| *vid);
    (summary, values)
}

/// FNV-1a over the value relation (the digest's stand-in for bit-identical
/// final state).
fn values_hash(values: &[(u64, u64)]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for (vid, val) in values {
        for b in vid.to_le_bytes().into_iter().chain(val.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Append one deterministic line per scenario to `$CHAOS_DIGEST`, if set.
fn chaos_digest(scenario: &str, summary: &JobSummary, injected: u64, values: &[(u64, u64)]) {
    let Ok(path) = std::env::var("CHAOS_DIGEST") else {
        return;
    };
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .unwrap();
    writeln!(
        f,
        "{scenario} recoveries={} retries={} supersteps={} injected={injected} \
         dead={} conf={} cfb={} logw={} logr={} ckret={} slaba={} slabr={} \
         fcopy={} jcmp={} jmsgs={} jcomb={} values={:016x}",
        summary.recoveries,
        summary.retries,
        summary.supersteps,
        summary.stats.workers_declared_dead,
        summary.stats.confined_recoveries,
        summary.stats.confined_fallbacks,
        summary.stats.log_bytes_written,
        summary.stats.log_runs_replayed,
        summary.stats.ckpt_bytes_retired,
        summary.stats.slab_allocations,
        summary.stats.slab_recycled,
        summary.stats.frame_bytes_copied,
        summary.job_stats.compute_calls,
        summary.job_stats.messages_sent,
        summary.job_stats.messages_combined,
        values_hash(values),
    )
    .unwrap();
}

/// The tentpole differential: for one program, run
///
/// 1. fault-free (reference),
/// 2. worker death at superstep `fail_at` recovered via the GLOBAL path,
/// 3. the same death recovered via the CONFINED path,
///
/// and require bit-identical values, halting supersteps, and final global
/// state across all three, plus the confined/fallback counters landing
/// exactly where the design says they must.
fn assert_confined_matches_global<P, F>(
    tag: &str,
    guard: &fault::ChaosGuard,
    program: &Arc<P>,
    mode: ExecutionMode,
    ckpt_interval: u64,
    fail_at: u64,
    records: &[(u64, Vec<(u64, f64)>)],
    to_bits: F,
) where
    P: VertexProgram,
    F: Fn(&P::VertexValue) -> u64,
{
    let base_job = PregelixJob::new(&format!("rc-{tag}"))
        .with_checkpoint_interval(ckpt_interval)
        .with_execution_mode(mode);

    // 1. Fault-free reference. Logging is on (checkpointing is on), so the
    // tee must be writing logs even though nobody ever replays them.
    let (reference, expected) = run_case(program, &base_job, records, &to_bits);
    assert_eq!(reference.recoveries, 0, "{tag}: no faults, no recoveries");
    assert_eq!(reference.stats.confined_recoveries, 0, "{tag}");
    assert_eq!(reference.stats.confined_fallbacks, 0, "{tag}");
    assert!(
        reference.stats.log_bytes_written > 0,
        "{tag}: the message tee must persist logs when checkpointing is on"
    );
    assert!(fail_at < reference.supersteps, "{tag}: death must hit mid-job");

    // 2. Global rollback: confined recovery disabled by the knob.
    let plan = guard.install(FaultPlan::new().on(
        Site::Barrier,
        &fail_at.to_string(),
        1,
        Fault::FailWorker(2),
    ));
    let global_job = base_job.clone().with_confined_recovery(false);
    let (global, global_values) = run_case(program, &global_job, records, &to_bits);
    assert_eq!(plan.injected(), 1, "{tag}");
    assert_eq!(global.recoveries, 1, "{tag}: global path, one recovery");
    assert_eq!(global.stats.confined_recoveries, 0, "{tag}: knob off, never confined");
    assert_eq!(global.stats.confined_fallbacks, 0, "{tag}: knob off, never attempted");
    chaos_digest(&format!("{tag}-global"), &global, plan.injected(), &global_values);
    guard.clear();

    // 3. Confined recovery (the default).
    let plan = guard.install(FaultPlan::new().on(
        Site::Barrier,
        &fail_at.to_string(),
        1,
        Fault::FailWorker(2),
    ));
    let (confined, confined_values) = run_case(program, &base_job, records, &to_bits);
    assert_eq!(plan.injected(), 1, "{tag}");
    assert_eq!(confined.recoveries, 1, "{tag}: confined path, one recovery");
    assert_eq!(
        confined.stats.confined_recoveries, 1,
        "{tag}: the recovery must have been confined"
    );
    assert_eq!(
        confined.stats.confined_fallbacks, 0,
        "{tag}: intact logs, no fallback"
    );
    chaos_digest(&format!("{tag}-confined"), &confined, plan.injected(), &confined_values);
    guard.clear();

    // The differential contract.
    assert_eq!(global_values, expected, "{tag}: global recovery vs fault-free");
    assert_eq!(confined_values, expected, "{tag}: confined recovery vs fault-free");
    for (name, run) in [("global", &global), ("confined", &confined)] {
        assert_eq!(
            run.supersteps, reference.supersteps,
            "{tag}: {name} recovery must not shift the halting superstep"
        );
        assert_eq!(
            run.final_gs, reference.final_gs,
            "{tag}: {name} recovery must reproduce the final global state bit-for-bit"
        );
    }
}

// ---------------------------------------------------------------------------
// The differential harness: three programs x two execution modes
// ---------------------------------------------------------------------------

/// CC, barrier mode. `checkpoint_interval(2)` with the death at superstep 4
/// puts the newest checkpoint at superstep 3, so the confined path must
/// actually REPLAY superstep 3 from the survivors' logs (not just reload).
#[test]
fn cc_barrier_confined_replay_is_bit_identical() {
    let guard = fault::exclusive();
    let program = Arc::new(ConnectedComponents);
    assert_confined_matches_global(
        "cc-b",
        &guard,
        &program,
        ExecutionMode::Barrier,
        2,
        4,
        &two_chains(),
        |v: &u64| *v,
    );
}

/// SSSP (f64 distances, unreachable component), barrier mode.
#[test]
fn sssp_barrier_confined_replay_is_bit_identical() {
    let guard = fault::exclusive();
    let program = Arc::new(ShortestPaths::new(0));
    assert_confined_matches_global(
        "sssp-b",
        &guard,
        &program,
        ExecutionMode::Barrier,
        2,
        4,
        &two_chains(),
        |v: &f64| v.to_bits(),
    );
}

/// PageRank (global aggregate + `num_vertices` reads), barrier mode: the
/// replayed supersteps must see the exact per-superstep GS history —
/// aggregate drift would shift every downstream rank.
#[test]
fn pagerank_barrier_confined_replay_is_bit_identical() {
    let guard = fault::exclusive();
    let program = Arc::new(PageRank::new(8));
    assert_confined_matches_global(
        "pr-b",
        &guard,
        &program,
        ExecutionMode::Barrier,
        2,
        4,
        &two_chains(),
        |v: &f64| v.to_bits(),
    );
}

/// CC in frontier mode. Frontier windows clamp to checkpoint boundaries, so
/// a boundary death always has a fresh checkpoint (replay range is empty —
/// confined recovery degenerates to reload-only) but the confined path,
/// dead-partition selection, and GS-history validation all still run.
#[test]
fn cc_frontier_confined_recovery_is_bit_identical() {
    let guard = fault::exclusive();
    let program = Arc::new(ConnectedComponents);
    assert_confined_matches_global(
        "cc-f",
        &guard,
        &program,
        ExecutionMode::Frontier,
        2,
        4,
        &two_chains(),
        |v: &u64| *v,
    );
}

/// SSSP in frontier mode.
#[test]
fn sssp_frontier_confined_recovery_is_bit_identical() {
    let guard = fault::exclusive();
    let program = Arc::new(ShortestPaths::new(0));
    assert_confined_matches_global(
        "sssp-f",
        &guard,
        &program,
        ExecutionMode::Frontier,
        2,
        4,
        &two_chains(),
        |v: &f64| v.to_bits(),
    );
}

/// PageRank in frontier mode (not `frontier_safe`: windows run gated, no
/// early advance — recovery must still be confined and bit-identical).
#[test]
fn pagerank_frontier_confined_recovery_is_bit_identical() {
    let guard = fault::exclusive();
    let program = Arc::new(PageRank::new(8));
    assert_confined_matches_global(
        "pr-f",
        &guard,
        &program,
        ExecutionMode::Frontier,
        2,
        4,
        &two_chains(),
        |v: &f64| v.to_bits(),
    );
}

// ---------------------------------------------------------------------------
// Replayed work is real and partition-scoped
// ---------------------------------------------------------------------------

/// The confined run with a checkpoint 1 superstep behind the death must
/// feed logged runs back through the combiner: `log_runs_replayed` > 0, and
/// bounded by (supersteps replayed) x (sources) x (dead partitions).
#[test]
fn confined_replay_consumes_logged_runs() {
    let guard = fault::exclusive();
    let records = btc::btc(2_000, 4.0, 77);
    let job = PregelixJob::new("rc-runs").with_checkpoint_interval(2);
    let program = Arc::new(ConnectedComponents);
    let (reference, expected) = run_case(&program, &job, &records, &|v: &u64| *v);
    assert!(reference.supersteps > 4);

    let plan =
        guard.install(FaultPlan::new().on(Site::Barrier, "4", 1, Fault::FailWorker(2)));
    let (summary, values) = run_case(&program, &job, &records, &|v: &u64| *v);
    assert_eq!(plan.injected(), 1);
    assert_eq!(summary.stats.confined_recoveries, 1);
    assert_eq!(summary.stats.confined_fallbacks, 0);
    // Death at gs=4 with the newest checkpoint at 3: exactly one superstep
    // replayed, on exactly one dead partition, fed by at most one logged
    // run per source partition.
    assert!(
        summary.stats.log_runs_replayed > 0,
        "the replay must consume survivors' logged runs"
    );
    assert!(
        summary.stats.log_runs_replayed <= 4,
        "one superstep x one dead partition x <=4 sources, got {}",
        summary.stats.log_runs_replayed
    );
    assert_eq!(values, expected);
    chaos_digest("replay-runs", &summary, plan.injected(), &values);
}

// ---------------------------------------------------------------------------
// Log holes provably fall back to the global path
// ---------------------------------------------------------------------------

/// A log WRITE fault (swallowed at tee time — logging is best-effort and
/// must never fail a healthy superstep) leaves a hole that the confined
/// pre-validation finds at recovery time: one counted fallback, global
/// rollback, bit-identical values.
#[test]
fn torn_log_write_falls_back_to_global_recovery() {
    let guard = fault::exclusive();
    let records = two_chains();
    let job = PregelixJob::new("rc-wfault").with_checkpoint_interval(2);
    let program = Arc::new(ConnectedComponents);
    let (reference, expected) = run_case(&program, &job, &records, &|v: &u64| *v);
    assert!(reference.supersteps > 4);

    // Superstep 3's src-1 log write dies (torn file on the DFS); worker 2
    // dies at the superstep-4 barrier. Confined recovery needs that log.
    let plan = guard.install(
        FaultPlan::new()
            .on(
                Site::MsgLog,
                "jobs/rc-wfault/msglog/3/src1",
                1,
                Fault::TornWrite { keep: 6 },
            )
            .on(Site::Barrier, "4", 1, Fault::FailWorker(2)),
    );
    let (summary, values) = run_case(&program, &job, &records, &|v: &u64| *v);
    assert_eq!(plan.injected(), 2, "both the torn write and the death fired");
    assert_eq!(summary.recoveries, 1, "the global fallback still recovers");
    assert_eq!(summary.retries, 0, "the swallowed log write is not an in-place retry");
    assert_eq!(
        summary.stats.confined_fallbacks, 1,
        "the log hole must be detected and counted as a fallback"
    );
    assert_eq!(
        summary.stats.confined_recoveries, 0,
        "a fallen-back recovery is not a confined recovery"
    );
    assert_eq!(values, expected, "the fallback path stays bit-identical");
    chaos_digest("log-write-hole", &summary, plan.injected(), &values);
}

/// A log READ fault at replay time (the file is fine on disk, the read
/// dies): same contract — typed unavailability, counted fallback, global
/// rollback, identical values.
#[test]
fn log_read_failure_at_replay_falls_back_to_global_recovery() {
    let guard = fault::exclusive();
    let records = two_chains();
    let job = PregelixJob::new("rc-rfault").with_checkpoint_interval(2);
    let program = Arc::new(ConnectedComponents);
    let (_, expected) = run_case(&program, &job, &records, &|v: &u64| *v);

    let plan = guard.install(
        FaultPlan::new()
            .on(
                Site::MsgLog,
                "replay:jobs/rc-rfault/msglog/3",
                1,
                Fault::IoError,
            )
            .on(Site::Barrier, "4", 1, Fault::FailWorker(2)),
    );
    let (summary, values) = run_case(&program, &job, &records, &|v: &u64| *v);
    assert_eq!(plan.injected(), 2);
    assert_eq!(summary.recoveries, 1);
    assert_eq!(summary.stats.confined_fallbacks, 1);
    assert_eq!(summary.stats.confined_recoveries, 0);
    assert_eq!(values, expected);
    chaos_digest("log-read-hole", &summary, plan.injected(), &values);
}

// ---------------------------------------------------------------------------
// Recovery cap and GC satellites
// ---------------------------------------------------------------------------

/// `with_max_recoveries(0)` turns the first recoverable failure terminal:
/// the typed `RecoveriesExhausted` error names the configured cap and the
/// underlying fault instead of silently retrying forever.
#[test]
fn max_recoveries_zero_makes_the_first_failure_terminal() {
    let guard = fault::exclusive();
    let records = two_chains();
    let job = PregelixJob::new("rc-cap")
        .with_checkpoint_interval(1)
        .with_max_recoveries(0);
    guard.install(FaultPlan::new().on(Site::Barrier, "3", 1, Fault::FailWorker(2)));
    let cluster = Cluster::new(ClusterConfig::new(4, 8 << 20)).unwrap();
    let program = Arc::new(ConnectedComponents);
    let err = run_job_from_records(&cluster, &program, &job, records).unwrap_err();
    let PregelixError::RecoveriesExhausted { cap, last_error } = &err else {
        panic!("expected RecoveriesExhausted, got: {err}");
    };
    assert_eq!(*cap, 0);
    assert!(
        last_error.contains("worker 2"),
        "the exhaustion error must name the underlying fault: {last_error}"
    );
    assert!(!err.is_recoverable());
    assert!(err.to_string().contains("max_recoveries = 0"), "{err}");
}

/// Each successful periodic checkpoint retires the checkpoints, message
/// logs, and GS history it obsoletes — and a later confined recovery still
/// finds everything it needs (GC must never eat live recovery state).
#[test]
fn gc_retires_old_state_without_breaking_confined_recovery() {
    let guard = fault::exclusive();
    let records = two_chains();
    let job = PregelixJob::new("rc-gc").with_checkpoint_interval(2);
    let program = Arc::new(ConnectedComponents);

    // Fault-free: GC alone must be retiring bytes as checkpoints land.
    guard.install(FaultPlan::new());
    let (reference, expected) = run_case(&program, &job, &records, &|v: &u64| *v);
    assert!(
        reference.stats.ckpt_bytes_retired > 0,
        "periodic checkpoints must retire their predecessors"
    );
    guard.clear();

    // Death at superstep 4: the newest checkpoint (superstep 3) retired the
    // superstep-1/2 logs, but the superstep-3 log the replay needs is newer
    // than the checkpoint and must have survived GC.
    let plan =
        guard.install(FaultPlan::new().on(Site::Barrier, "4", 1, Fault::FailWorker(2)));
    let (summary, values) = run_case(&program, &job, &records, &|v: &u64| *v);
    assert_eq!(plan.injected(), 1);
    assert_eq!(summary.stats.confined_recoveries, 1, "GC must not break replay");
    assert_eq!(summary.stats.confined_fallbacks, 0);
    assert!(summary.stats.log_runs_replayed > 0);
    assert!(summary.stats.ckpt_bytes_retired > 0);
    assert_eq!(values, expected);
    chaos_digest("gc-then-confined", &summary, plan.injected(), &values);
}

/// With checkpointing off, the tee never writes a byte: confined recovery's
/// cost is strictly opt-in via the checkpoint ladder.
#[test]
fn no_checkpoints_means_no_log_writes() {
    let _guard = fault::exclusive();
    let records = two_chains();
    let job = PregelixJob::new("rc-nolog"); // no checkpoint interval
    let program = Arc::new(ConnectedComponents);
    let (summary, _) = run_case(&program, &job, &records, &|v: &u64| *v);
    assert_eq!(summary.stats.log_bytes_written, 0);
    assert_eq!(summary.stats.confined_recoveries, 0);
    assert_eq!(summary.stats.ckpt_bytes_retired, 0);
}
