//! End-to-end DFS I/O (§5.2 load/dump) and job pipelining (§5.6).

use pregelix::graphgen::{btc, text};
use pregelix::prelude::*;
use std::sync::Arc;

#[test]
fn full_text_load_run_dump_cycle() {
    let records = btc::btc(1_200, 5.0, 80);
    let cluster = Cluster::new(ClusterConfig::new(3, 16 << 20)).unwrap();
    text::write_to_dfs(cluster.dfs(), "input/io-test", &records).unwrap();

    let job = PregelixJob::new("io-test").with_io("input/io-test", "output/io-test");
    let program = Arc::new(ShortestPaths::new(0));
    let summary = run_job(&cluster, &program, &job).unwrap();
    assert!(summary.supersteps > 1);

    let output = pregelix::core::load::read_output(cluster.dfs(), "output/io-test").unwrap();
    assert_eq!(output.len(), records.len());
    // Spot-check against Dijkstra.
    let expected = pregelix::algorithms::sssp::reference_sssp(&records, 0);
    for (vid, line) in &output {
        let dist_str = line.split_whitespace().nth(1).unwrap();
        match expected.get(vid) {
            Some(d) => {
                let got: f64 = dist_str.parse().unwrap();
                assert!((got - d).abs() < 1e-3, "vid {vid}: {got} vs {d}");
            }
            None => assert_eq!(dist_str, "inf", "vid {vid}"),
        }
    }
}

#[test]
fn output_parts_are_one_per_partition() {
    let records = btc::btc(500, 4.0, 81);
    let cluster = Cluster::new(ClusterConfig::new(4, 16 << 20)).unwrap();
    text::write_to_dfs(cluster.dfs(), "input/parts", &records).unwrap();
    let job = PregelixJob::new("parts")
        .with_io("input/parts", "output/parts")
        .with_partitions_per_worker(2);
    run_job(&cluster, &Arc::new(ConnectedComponents), &job).unwrap();
    let parts = cluster.dfs().list("output/parts").unwrap();
    assert_eq!(parts.len(), 8, "4 workers x 2 partitions");
}

#[test]
fn malformed_input_is_a_user_error() {
    let cluster = Cluster::new(ClusterConfig::new(2, 16 << 20)).unwrap();
    cluster
        .dfs()
        .write("input/bad", b"1 2 3\nnot-a-vid 4\n")
        .unwrap();
    let job = PregelixJob::new("bad").with_io("input/bad", "output/bad");
    let err = run_job(&cluster, &Arc::new(ConnectedComponents), &job).unwrap_err();
    assert!(!err.is_recoverable(), "parse errors go to the user: {err}");
}

#[test]
fn missing_input_is_reported() {
    let cluster = Cluster::new(ClusterConfig::new(2, 16 << 20)).unwrap();
    let job = PregelixJob::new("missing").with_io("input/nothing", "output/nothing");
    assert!(run_job(&cluster, &Arc::new(ConnectedComponents), &job).is_err());
}

#[test]
fn pipelined_stages_share_the_resident_graph() {
    // Two SSSP stages from different sources over one loaded graph: the
    // second stage must see the same topology, all vertices reactivated,
    // and must not be polluted by the first stage's message state.
    let records = btc::btc(2_000, 5.0, 82);
    let cluster = Cluster::new(ClusterConfig::new(3, 16 << 20)).unwrap();
    text::write_to_dfs(cluster.dfs(), "input/pipe", &records).unwrap();
    let job = PregelixJob::new("pipe").with_io("input/pipe", "output/pipe");

    let stages = vec![Arc::new(ShortestPaths::new(0)), Arc::new(ShortestPaths::new(7))];
    let summaries = run_pipeline(&cluster, &stages, &job).unwrap();
    assert_eq!(summaries.len(), 2);

    // Final dump reflects stage 2 (source 7).
    let expected = pregelix::algorithms::sssp::reference_sssp(&records, 7);
    let output = pregelix::core::load::read_output(cluster.dfs(), "output/pipe").unwrap();
    for (vid, line) in output {
        let dist_str = line.split_whitespace().nth(1).unwrap();
        match expected.get(&vid) {
            Some(d) => {
                let got: f64 = dist_str.parse().unwrap();
                assert!((got - d).abs() < 1e-3, "vid {vid}");
            }
            None => assert_eq!(dist_str, "inf"),
        }
    }
}

#[test]
fn pipelining_switches_plans_between_stages() {
    // Stage 1 runs LOJ (builds Vid indexes), stage 2 runs FOJ (drops
    // them): the plan transition logic in LoadedGraph::run must handle
    // both directions.
    let records = btc::btc(1_500, 5.0, 83);
    let cluster = Cluster::new(ClusterConfig::new(2, 16 << 20)).unwrap();
    let program = Arc::new(ConnectedComponents);
    let job_loj = PregelixJob::new("switch-a").with_join(JoinStrategy::LeftOuter);
    let job_foj = PregelixJob::new("switch-b").with_join(JoinStrategy::FullOuter);

    let mut graph =
        LoadedGraph::load_from_records(&cluster, &program, &job_loj, records.clone()).unwrap();
    graph.run(&cluster, &program, &job_loj).unwrap();
    graph.run(&cluster, &program, &job_foj).unwrap();
    graph.run(&cluster, &program, &job_loj).unwrap();

    let adjacency: Vec<(u64, Vec<u64>)> = records
        .iter()
        .map(|(v, e)| (*v, e.iter().map(|(d, _)| *d).collect()))
        .collect();
    let expected =
        pregelix::algorithms::connected_components::reference_components(&adjacency);
    for v in graph.collect_vertices::<ConnectedComponents>().unwrap() {
        assert_eq!(v.value, expected[&v.vid]);
    }
}
