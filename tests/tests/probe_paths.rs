//! Property tests for the sorted-probe access path (§5.2/§7.5): a
//! [`ProbeCursor`] answering a monotonically non-decreasing key sequence
//! must be indistinguishable from repeated point `search`es — and from a
//! `BTreeMap` reference model — across hits, misses in gaps, duplicate
//! probe keys, deleted keys, and probes past the last leaf. The LSM sweep
//! additionally forces multi-component layouts (explicit flush points in
//! the op stream) so the bloom-gated multi-component cursor is exercised
//! with tombstones shadowing older components.
//!
//! The case count honours `PROPTEST_CASES` so CI's storage-proptest job
//! can raise it without a code change.

use pregelix::common::stats::ClusterCounters;
use pregelix::storage::btree::BTree;
use pregelix::storage::cache::BufferCache;
use pregelix::storage::file::{FileManager, TempDir};
use pregelix::storage::lsm::LsmBTree;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn cache(label: &str) -> (BufferCache, TempDir) {
    let dir = TempDir::new(label).unwrap();
    // Small pages force multi-level trees (and multi-leaf sibling hops)
    // even at proptest-sized key counts.
    let fm = FileManager::new(dir.path(), 256, ClusterCounters::new()).unwrap();
    (BufferCache::new(fm, 128), dir)
}

fn k(v: u64) -> Vec<u8> {
    v.to_be_bytes().to_vec()
}

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

/// One mutation in the randomised workload. `Flush` is meaningful only
/// for the LSM store, where it seals the in-memory component into a new
/// bloom-guarded disk component.
#[derive(Debug, Clone, Copy)]
enum Op {
    Upsert(u64),
    Delete(u64),
    Flush,
}

fn ops(max_key: u64, len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            6 => (0..max_key).prop_map(Op::Upsert),
            3 => (0..max_key).prop_map(Op::Delete),
            1 => Just(Op::Flush),
        ],
        1..len,
    )
}

/// Sorted probe sequence over a domain 1.5× wider than the data domain:
/// hits, gap misses, duplicates (from collection collisions), and probes
/// past the last leaf all arise naturally.
fn probes(max_key: u64, len: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0..max_key + max_key / 2, 1..len).prop_map(|mut v| {
        v.sort_unstable();
        v
    })
}

fn value_for(key: u64, version: u64) -> Vec<u8> {
    let mut v = key.to_le_bytes().to_vec();
    v.extend_from_slice(&version.to_le_bytes());
    v
}

proptest! {
    #![proptest_config(ProptestConfig { cases: cases(), ..ProptestConfig::default() })]

    #[test]
    fn prop_btree_probe_cursor_matches_search_and_model(
        workload in ops(400, 120),
        probe_keys in probes(400, 150),
    ) {
        let (cache, _dir) = cache("probe-btree");
        let mut tree = BTree::create(cache).unwrap();
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for (i, op) in workload.iter().enumerate() {
            match *op {
                Op::Upsert(key) => {
                    let v = value_for(key, i as u64);
                    tree.upsert(&k(key), &v).unwrap();
                    model.insert(key, v);
                }
                Op::Delete(key) => {
                    tree.delete(&k(key)).unwrap();
                    model.remove(&key);
                }
                Op::Flush => {} // no-op for the plain B-tree
            }
        }
        let mut cursor = tree.probe_cursor();
        for &key in &probe_keys {
            let got = cursor.probe(&k(key)).unwrap();
            prop_assert_eq!(&got, &tree.search(&k(key)).unwrap(), "key {}", key);
            prop_assert_eq!(got, model.get(&key).cloned(), "key {}", key);
        }
        // Membership path on a fresh cursor (its pinned leaf starts cold).
        let mut cursor = tree.probe_cursor();
        for &key in &probe_keys {
            prop_assert_eq!(
                cursor.probe_contains(&k(key)).unwrap(),
                model.contains_key(&key),
                "contains key {}", key
            );
        }
    }

    #[test]
    fn prop_btree_bulk_loaded_probe_cursor_matches_model(
        stride in 1u64..7,
        n in 10u64..400,
        probe_keys in probes(2800, 150),
    ) {
        // Bulk-loaded trees have a distinct leaf layout (fill-factor slack,
        // no split history); the cursor must not care.
        let (cache, _dir) = cache("probe-bulk");
        let mut tree = BTree::create(cache).unwrap();
        let model: BTreeMap<u64, Vec<u8>> =
            (0..n).map(|i| (i * stride, value_for(i * stride, 0))).collect();
        tree.bulk_load(model.iter().map(|(key, v)| (k(*key), v.clone())), 0.9)
            .unwrap();
        let mut cursor = tree.probe_cursor();
        for &key in &probe_keys {
            prop_assert_eq!(
                cursor.probe(&k(key)).unwrap(),
                model.get(&key).cloned(),
                "stride {} key {}", stride, key
            );
        }
    }

    #[test]
    fn prop_lsm_probe_cursor_matches_search_and_model(
        workload in ops(400, 160),
        probe_keys in probes(400, 150),
    ) {
        let (cache, _dir) = cache("probe-lsm");
        // Tiny mem budget: upserts spill into disk components on their own
        // even without explicit Flush ops, so multi-component layouts (and
        // tombstones shadowing older components) are the common case.
        let mut lsm = LsmBTree::create(cache, 512, 16);
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for (i, op) in workload.iter().enumerate() {
            match *op {
                Op::Upsert(key) => {
                    let v = value_for(key, i as u64);
                    lsm.upsert(&k(key), &v).unwrap();
                    model.insert(key, v);
                }
                Op::Delete(key) => {
                    lsm.delete(&k(key)).unwrap();
                    model.remove(&key);
                }
                Op::Flush => lsm.flush_mem().unwrap(),
            }
        }
        let mut cursor = lsm.probe_cursor();
        for &key in &probe_keys {
            let got = cursor.probe(&k(key)).unwrap();
            prop_assert_eq!(&got, &lsm.search(&k(key)).unwrap(), "key {}", key);
            prop_assert_eq!(got, model.get(&key).cloned(), "key {}", key);
        }
        let mut cursor = lsm.probe_cursor();
        for &key in &probe_keys {
            prop_assert_eq!(
                cursor.probe_contains(&k(key)).unwrap(),
                model.contains_key(&key),
                "contains key {}", key
            );
        }
    }

    #[test]
    fn prop_lsm_merge_preserves_probe_answers(
        workload in ops(300, 120),
        probe_keys in probes(300, 100),
    ) {
        // merge_all rebuilds every bloom filter and collapses tombstones;
        // probe answers before and after must agree with the model.
        let (cache, _dir) = cache("probe-merge");
        let mut lsm = LsmBTree::create(cache, 512, 16);
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for (i, op) in workload.iter().enumerate() {
            match *op {
                Op::Upsert(key) => {
                    let v = value_for(key, i as u64);
                    lsm.upsert(&k(key), &v).unwrap();
                    model.insert(key, v);
                }
                Op::Delete(key) => {
                    lsm.delete(&k(key)).unwrap();
                    model.remove(&key);
                }
                Op::Flush => lsm.flush_mem().unwrap(),
            }
        }
        lsm.merge_all().unwrap();
        let mut cursor = lsm.probe_cursor();
        for &key in &probe_keys {
            prop_assert_eq!(
                cursor.probe(&k(key)).unwrap(),
                model.get(&key).cloned(),
                "key {}", key
            );
        }
    }
}
