//! Multi-user behaviour (§7.4) and the statistics collector (§5.7) as
//! correctness properties: concurrent jobs on one shared cluster must
//! produce the same answers as serial ones, and the cluster counters must
//! add up.

use pregelix::graphgen::{btc, webmap};
use pregelix::prelude::*;
use std::sync::Arc;

#[test]
fn concurrent_jobs_on_one_cluster_are_isolated_and_correct() {
    // Three different algorithms run simultaneously against the same
    // simulated machines (shared caches, disks, counters). Each must get
    // the answer it would get alone.
    let records = btc::btc(3_000, 5.0, 90);
    let cluster = Arc::new(Cluster::new(ClusterConfig::new(4, 16 << 20)).unwrap());

    let expected_cc = {
        let adjacency: Vec<(u64, Vec<u64>)> = records
            .iter()
            .map(|(v, e)| (*v, e.iter().map(|(d, _)| *d).collect()))
            .collect();
        pregelix::algorithms::connected_components::reference_components(&adjacency)
    };
    let expected_sssp = pregelix::algorithms::sssp::reference_sssp(&records, 0);

    std::thread::scope(|s| {
        let c1 = Arc::clone(&cluster);
        let r1 = records.clone();
        let cc = s.spawn(move || {
            let job = PregelixJob::new("conc-cc");
            let (_s, g) =
                run_job_from_records(&c1, &Arc::new(ConnectedComponents), &job, r1).unwrap();
            g.collect_vertices::<ConnectedComponents>().unwrap()
        });
        let c2 = Arc::clone(&cluster);
        let r2 = records.clone();
        let sssp = s.spawn(move || {
            let job = PregelixJob::new("conc-sssp").with_join(JoinStrategy::LeftOuter);
            let (_s, g) =
                run_job_from_records(&c2, &Arc::new(ShortestPaths::new(0)), &job, r2).unwrap();
            g.collect_vertices::<ShortestPaths>().unwrap()
        });
        let c3 = Arc::clone(&cluster);
        let r3 = records.clone();
        let pr = s.spawn(move || {
            let job = PregelixJob::new("conc-pr");
            let (summary, _g) =
                run_job_from_records(&c3, &Arc::new(PageRank::new(4)), &job, r3).unwrap();
            summary
        });

        for v in cc.join().unwrap() {
            assert_eq!(v.value, expected_cc[&v.vid], "cc vid {}", v.vid);
        }
        for v in sssp.join().unwrap() {
            match expected_sssp.get(&v.vid) {
                Some(d) => assert!((v.value - d).abs() < 1e-9, "sssp vid {}", v.vid),
                None => assert_eq!(v.value, pregelix::algorithms::sssp::UNREACHED),
            }
        }
        let pr_summary = pr.join().unwrap();
        assert_eq!(pr_summary.supersteps, 5);
    });
}

/// The counter invariants that hold in *both* execution modes: exact
/// data-derived totals, per-job deltas summing to the totals, and GS
/// bookkeeping. The per-entry shape of `superstep_stats` is
/// mode-dependent (one entry per superstep under the barrier, one per
/// window under the frontier), so callers assert it separately — the
/// one-entry-per-superstep alignment this test used to hard-code was a
/// latent barrier-only ordering assumption.
fn assert_stats_consistent(mode: ExecutionMode) -> JobSummary {
    let records = webmap::webmap(12, 6.0, 91); // 4096 vertices
    let cluster = Cluster::new(ClusterConfig::new(3, 16 << 20)).unwrap();
    let job = PregelixJob::new("stats").with_execution_mode(mode);
    let program = Arc::new(PageRank::new(3));
    let (summary, graph) =
        run_job_from_records(&cluster, &program, &job, records.clone()).unwrap();

    let n = records.len() as u64;
    let edges: u64 = records.iter().map(|(_, e)| e.len() as u64).sum();
    // compute calls: every vertex active in every one of the 4 supersteps
    // (ghost slots past the halt contribute zero calls).
    assert_eq!(summary.stats.compute_calls, 4 * n);
    // messages sent: one per edge per sending superstep (1, 2, 3).
    assert_eq!(summary.stats.messages_sent, 3 * edges);
    // combined messages: at most one per destination per superstep, and
    // nonzero.
    assert!(summary.stats.messages_combined > 0);
    assert!(summary.stats.messages_combined <= 3 * n);
    // The combiner must have actually reduced volume.
    assert!(summary.stats.messages_combined < summary.stats.messages_sent);
    // Cross-worker traffic happened and was counted.
    assert!(summary.stats.network_bytes > 0);
    assert!(summary.stats.network_frames > 0);
    // GS bookkeeping.
    assert_eq!(summary.final_gs.vertex_count, n);
    assert!(summary.final_gs.halt);
    assert_eq!(graph.vertex_count(), n);
    // Per-job deltas sum to the job totals regardless of how many
    // supersteps each superstep job covered.
    assert_eq!(summary.superstep_stats.len(), summary.superstep_times.len());
    let sum_calls: u64 = summary.superstep_stats.iter().map(|s| s.compute_calls).sum();
    assert_eq!(sum_calls, summary.stats.compute_calls);
    let sum_sent: u64 = summary.superstep_stats.iter().map(|s| s.messages_sent).sum();
    assert_eq!(sum_sent, summary.stats.messages_sent);
    summary
}

#[test]
fn statistics_counters_are_consistent_with_the_job() {
    let summary = assert_stats_consistent(ExecutionMode::Barrier);
    // Barrier mode: one stats entry per superstep, in superstep order, and
    // the final superstep sends nothing (everyone halts).
    assert_eq!(summary.superstep_stats.len() as u64, summary.supersteps);
    assert_eq!(summary.superstep_stats.last().unwrap().messages_sent, 0);
    // The frontier counters never move under the barrier.
    assert_eq!(summary.stats.frontier_advances, 0);
    assert_eq!(summary.stats.barrier_waits_avoided, 0);
}

#[test]
fn statistics_counters_are_consistent_in_frontier_mode() {
    let summary = assert_stats_consistent(ExecutionMode::Frontier);
    // Frontier mode: one stats entry per superstep *window*. The final
    // window absorbs the halting superstep, so the barrier-mode claim
    // "the last entry sends nothing" does not hold here — the totals
    // asserted by the shared helper are the mode-independent truth.
    let window = pregelix::core::runtime::FRONTIER_WINDOW as u64;
    let windows = summary.superstep_stats.len() as u64;
    assert!(windows <= summary.supersteps, "windows cover at least one superstep each");
    assert!(
        windows * window >= summary.supersteps,
        "no window covers more than FRONTIER_WINDOW supersteps"
    );
    // PageRank reads global state, so it windows without advancing early.
    assert!(summary.stats.frontier_advances > 0);
    assert_eq!(summary.stats.barrier_waits_avoided, 0);
}

#[test]
fn concurrent_jobs_with_spilling_message_files_do_not_collide() {
    // Regression test: Msg partition files are ping-pong-reused across
    // supersteps, so their paths must be namespaced by job — two
    // concurrent jobs whose message volume exceeds the in-memory run
    // threshold would otherwise overwrite each other's Msg state.
    let records = webmap::webmap(13, 8.0, 93); // big enough to spill runs
    let cluster = Arc::new(Cluster::new(ClusterConfig::new(2, 8 << 20)).unwrap());
    let expected = {
        let adjacency: Vec<(u64, Vec<u64>)> = records
            .iter()
            .map(|(v, e)| (*v, e.iter().map(|(d, _)| *d).collect()))
            .collect();
        pregelix::algorithms::pagerank::reference_pagerank(&adjacency, 0.85, 4)
    };
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|j| {
                let cluster = Arc::clone(&cluster);
                let records = records.clone();
                s.spawn(move || {
                    let job = PregelixJob::new(format!("collide-{j}"));
                    let (_s, g) =
                        run_job_from_records(&cluster, &Arc::new(PageRank::new(4)), &job, records)
                            .unwrap();
                    g.collect_vertices::<PageRank>().unwrap()
                })
            })
            .collect();
        for h in handles {
            let got = h.join().unwrap();
            for (v, (evid, erank)) in got.iter().zip(expected.iter()) {
                assert_eq!(v.vid, *evid);
                assert!((v.value - erank).abs() < 1e-9, "vid {}", v.vid);
            }
        }
    });
}

#[test]
fn single_worker_cluster_has_no_network_traffic() {
    let records = btc::btc(800, 4.0, 92);
    let cluster = Cluster::new(ClusterConfig::new(1, 16 << 20)).unwrap();
    let job = PregelixJob::new("local");
    let (summary, _g) =
        run_job_from_records(&cluster, &Arc::new(ConnectedComponents), &job, records).unwrap();
    assert_eq!(
        summary.stats.network_bytes, 0,
        "all messages stay on the single machine (Figure 1's local case)"
    );
}
