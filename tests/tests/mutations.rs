//! Graph mutation semantics (§2.1, §5.3.3, Figure 5): vertex
//! addition/removal through `compute`, conflict resolution via `resolve`,
//! and message-driven vertex creation (the join's left-outer case).

use pregelix::common::error::Result;
use pregelix::common::Vid;
use pregelix::core::api::{ComputeContext, Mutation, Resolution, VertexProgram};
use pregelix::prelude::*;
use std::sync::Arc;

/// Superstep 1: even vertices insert a shadow vertex (vid + 1000) and odd
/// vertices delete themselves. Superstep 2: everyone halts.
struct Mutator;

impl VertexProgram for Mutator {
    type VertexValue = u64;
    type EdgeValue = ();
    type Message = u64;
    type Aggregate = ();

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<()> {
        if ctx.superstep() == 1 {
            if ctx.vid() % 2 == 0 {
                ctx.add_vertex(VertexData::new(ctx.vid() + 1000, ctx.vid(), vec![]));
            } else {
                ctx.delete_vertex(ctx.vid());
            }
        }
        ctx.vote_to_halt();
        Ok(())
    }

    fn init_vertex(&self, vid: Vid, edges: Vec<(Vid, f64)>) -> VertexData<Self> {
        VertexData::new(
            vid,
            vid,
            edges.into_iter().map(|(d, _)| Edge::new(d, ())).collect(),
        )
    }
}

#[test]
fn inserts_and_deletes_apply_at_the_next_superstep() {
    let records: Vec<(Vid, Vec<(Vid, f64)>)> = (0..10).map(|v| (v, vec![])).collect();
    let cluster = Cluster::new(ClusterConfig::new(3, 8 << 20)).unwrap();
    let job = PregelixJob::new("mutate");
    let (summary, graph) =
        run_job_from_records(&cluster, &Arc::new(Mutator), &job, records).unwrap();
    let vertices = graph.collect_vertices::<Mutator>().unwrap();
    let vids: Vec<Vid> = vertices.iter().map(|v| v.vid).collect();
    // Evens stay (0,2,4,6,8), odds deleted, shadows created.
    assert_eq!(vids, vec![0, 2, 4, 6, 8, 1000, 1002, 1004, 1006, 1008]);
    assert_eq!(summary.final_gs.vertex_count, 10);
    // Shadows carry the inserting vertex's value.
    assert_eq!(
        vertices.iter().find(|v| v.vid == 1004).unwrap().value,
        4
    );
}

/// Conflicting insertions of the same vid from two different vertices,
/// with a custom `resolve` that keeps the largest value.
struct ConflictInsert;

impl VertexProgram for ConflictInsert {
    type VertexValue = u64;
    type EdgeValue = ();
    type Message = u64;
    type Aggregate = ();

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<()> {
        if ctx.superstep() == 1 && ctx.vid() < 4 {
            // Everyone tries to create vid 99 with their own value.
            ctx.add_vertex(VertexData::new(99, ctx.vid() * 10, vec![]));
        }
        ctx.vote_to_halt();
        Ok(())
    }

    fn init_vertex(&self, vid: Vid, _edges: Vec<(Vid, f64)>) -> VertexData<Self> {
        VertexData::new(vid, 0, vec![])
    }

    fn resolve(&self, vid: Vid, mutations: Vec<Mutation<Self>>) -> Resolution<Self> {
        let best = mutations
            .into_iter()
            .filter_map(|m| match m {
                Mutation::Insert(v) => Some(v),
                Mutation::Delete => None,
            })
            .max_by_key(|v| v.value);
        match best {
            Some(v) => {
                assert_eq!(v.vid, vid);
                Resolution::Insert(v)
            }
            None => Resolution::Keep,
        }
    }
}

#[test]
fn custom_resolve_picks_a_winner_among_conflicts() {
    let records: Vec<(Vid, Vec<(Vid, f64)>)> = (0..4).map(|v| (v, vec![])).collect();
    let cluster = Cluster::new(ClusterConfig::new(2, 8 << 20)).unwrap();
    let job = PregelixJob::new("conflict");
    let (_s, graph) =
        run_job_from_records(&cluster, &Arc::new(ConflictInsert), &job, records).unwrap();
    let vertices = graph.collect_vertices::<ConflictInsert>().unwrap();
    let v99 = vertices.iter().find(|v| v.vid == 99).expect("created");
    assert_eq!(v99.value, 30, "largest proposed value wins");
    assert_eq!(vertices.len(), 5);
}

/// Messages to nonexistent vertices create them (the left-outer case of
/// the message join, §3).
struct Spawner;

impl VertexProgram for Spawner {
    type VertexValue = f64;
    type EdgeValue = ();
    type Message = f64;
    type Aggregate = ();

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<()> {
        if ctx.superstep() == 1 {
            // Send to a vid that has no Vertex row.
            ctx.send_message(ctx.vid() + 500, 1.25);
        } else {
            let sum: f64 = ctx.messages().iter().sum();
            if sum > 0.0 {
                ctx.set_value(sum);
            }
        }
        ctx.vote_to_halt();
        Ok(())
    }

    fn init_vertex(&self, vid: Vid, _edges: Vec<(Vid, f64)>) -> VertexData<Self> {
        VertexData::new(vid, 0.0, vec![])
    }
}

#[test]
fn messages_to_missing_vertices_create_them_on_both_join_plans() {
    for join in [JoinStrategy::FullOuter, JoinStrategy::LeftOuter] {
        let records: Vec<(Vid, Vec<(Vid, f64)>)> = (0..6).map(|v| (v, vec![])).collect();
        let cluster = Cluster::new(ClusterConfig::new(2, 8 << 20)).unwrap();
        let job = PregelixJob::new(format!("spawn-{join:?}")).with_join(join);
        let (summary, graph) =
            run_job_from_records(&cluster, &Arc::new(Spawner), &job, records).unwrap();
        let vertices = graph.collect_vertices::<Spawner>().unwrap();
        assert_eq!(vertices.len(), 12, "{join:?}");
        assert_eq!(summary.final_gs.vertex_count, 12, "{join:?}");
        for v in vertices.iter().filter(|v| v.vid >= 500) {
            assert_eq!(v.value, 1.25, "{join:?} vid {}", v.vid);
        }
    }
}

#[test]
fn deleting_a_nonexistent_vertex_is_a_noop() {
    struct DeleteGhost;
    impl VertexProgram for DeleteGhost {
        type VertexValue = u64;
        type EdgeValue = ();
        type Message = u64;
        type Aggregate = ();
        fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<()> {
            if ctx.superstep() == 1 {
                ctx.delete_vertex(777_777);
            }
            ctx.vote_to_halt();
            Ok(())
        }
        fn init_vertex(&self, vid: Vid, _e: Vec<(Vid, f64)>) -> VertexData<Self> {
            VertexData::new(vid, 0, vec![])
        }
    }
    let records: Vec<(Vid, Vec<(Vid, f64)>)> = (0..5).map(|v| (v, vec![])).collect();
    let cluster = Cluster::new(ClusterConfig::new(2, 8 << 20)).unwrap();
    let job = PregelixJob::new("ghost");
    let (summary, graph) =
        run_job_from_records(&cluster, &Arc::new(DeleteGhost), &job, records).unwrap();
    assert_eq!(graph.collect_vertices::<DeleteGhost>().unwrap().len(), 5);
    assert_eq!(summary.final_gs.vertex_count, 5);
}
