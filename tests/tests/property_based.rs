//! Property-based end-to-end tests: random graphs, random plans — the
//! distributed answer must always match the single-machine reference.

use pregelix::graphgen::Dataset;
use pregelix::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};
use std::sync::Arc;

/// Generate a random symmetric graph from a proptest-chosen seed/shape.
fn graph(n: u64, edges: u64, seed: u64) -> Vec<(u64, Vec<(u64, f64)>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut adj: Vec<Vec<(u64, f64)>> = vec![Vec::new(); n as usize];
    for _ in 0..edges {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b {
            continue;
        }
        let w = rng.gen_range(1..8) as f64;
        adj[a as usize].push((b, w));
        adj[b as usize].push((a, w));
    }
    adj.into_iter()
        .enumerate()
        .map(|(v, mut e)| {
            e.sort_unstable_by_key(|(d, _)| *d);
            e.dedup_by_key(|(d, _)| *d);
            (v as u64, e)
        })
        .collect()
}

fn arbitrary_plan() -> impl Strategy<Value = PlanConfig> {
    (0usize..16).prop_map(|i| PlanConfig::all()[i])
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn prop_sssp_matches_dijkstra(
        seed in 0u64..1_000,
        n in 50u64..300,
        plan in arbitrary_plan(),
        workers in 1usize..4,
    ) {
        let records = graph(n, n * 3, seed);
        let expected = pregelix::algorithms::sssp::reference_sssp(&records, 0);
        let cluster = Cluster::new(ClusterConfig::new(workers, 8 << 20)).unwrap();
        let job = PregelixJob::new(format!("prop-sssp-{seed}")).with_plan(plan);
        let (_s, g) = run_job_from_records(
            &cluster,
            &Arc::new(ShortestPaths::new(0)),
            &job,
            records,
        ).unwrap();
        for v in g.collect_vertices::<ShortestPaths>().unwrap() {
            match expected.get(&v.vid) {
                Some(d) => prop_assert!((v.value - d).abs() < 1e-9, "vid {}", v.vid),
                None => prop_assert_eq!(v.value, pregelix::algorithms::sssp::UNREACHED),
            }
        }
    }

    #[test]
    fn prop_cc_matches_union_find(
        seed in 0u64..1_000,
        n in 50u64..300,
        plan in arbitrary_plan(),
    ) {
        let records = graph(n, n, seed); // sparse: several components
        let adjacency: Vec<(u64, Vec<u64>)> = records
            .iter()
            .map(|(v, e)| (*v, e.iter().map(|(d, _)| *d).collect()))
            .collect();
        let expected =
            pregelix::algorithms::connected_components::reference_components(&adjacency);
        let cluster = Cluster::new(ClusterConfig::new(2, 8 << 20)).unwrap();
        let job = PregelixJob::new(format!("prop-cc-{seed}")).with_plan(plan);
        let (_s, g) = run_job_from_records(
            &cluster,
            &Arc::new(ConnectedComponents),
            &job,
            records,
        ).unwrap();
        for v in g.collect_vertices::<ConnectedComponents>().unwrap() {
            prop_assert_eq!(v.value, expected[&v.vid], "vid {}", v.vid);
        }
    }

    #[test]
    fn prop_dataset_sampling_preserves_validity(
        seed in 0u64..1_000,
        target in 20usize..150,
    ) {
        // Random-walk samples are valid graphs: dense ids, in-sample edges.
        let records = graph(400, 1200, seed);
        let d = Dataset { name: "prop", records };
        let sample = pregelix::graphgen::random_walk_sample(&d.records, target, seed);
        prop_assert_eq!(sample.len(), target);
        for (i, (v, edges)) in sample.iter().enumerate() {
            prop_assert_eq!(*v, i as u64);
            for (dst, _) in edges {
                prop_assert!((*dst as usize) < target);
            }
        }
    }
}
