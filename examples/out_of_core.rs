//! Transparent out-of-core execution (§5.4, Figure 10's headline result).
//!
//! ```text
//! cargo run --release --example out_of_core
//! ```
//!
//! The same PageRank job runs twice on the same dataset: once on a
//! cluster whose aggregate RAM comfortably holds the graph, and once on a
//! cluster scaled down so the buffer caches cannot — the identical
//! physical plan then spills through the buffer cache and run files,
//! *without any job-level configuration change*. For contrast, the
//! Giraph-like baseline is run at the same small memory point, where it
//! fails with OutOfMemory — the Figure 10 story in miniature.

use pregelix::baselines::{Algorithm, BaselineConfig, BaselineEngine, GiraphEngine};
use pregelix::graphgen;
use pregelix::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let records = graphgen::webmap::webmap(14, 8.0, 21);
    let stats = graphgen::stats::DatasetStats::of("webmap-like", &records);
    println!("input graph: {}\n", stats.row());
    let program = Arc::new(PageRank::new(5));

    for (label, worker_ram) in [
        ("in-memory  (4 x 32 MB)", 32usize << 20),
        ("out-of-core (4 x 256 KB)", 256 << 10),
    ] {
        let cluster = Cluster::new(ClusterConfig::new(4, worker_ram))?;
        let ratio = stats.size_bytes as f64 / cluster.config().aggregate_ram() as f64;
        let job = PregelixJob::new("oocpr");
        let (summary, _graph) =
            run_job_from_records(&cluster, &program, &job, records.clone())?;
        println!(
            "{label}: dataset/RAM ratio {ratio:.2} -> {} supersteps in {:?}",
            summary.supersteps, summary.elapsed
        );
        println!(
            "  cache: {} hits / {} misses / {} evictions; disk: {:.1} MB read, {:.1} MB written; {} sort runs spilled\n",
            summary.stats.cache_hits,
            summary.stats.cache_misses,
            summary.stats.cache_evictions,
            summary.stats.disk_read_bytes as f64 / (1024.0 * 1024.0),
            summary.stats.disk_write_bytes as f64 / (1024.0 * 1024.0),
            summary.stats.sort_runs_spilled,
        );
    }

    // The process-centric comparison at the small-memory point.
    let giraph = GiraphEngine::in_memory();
    match giraph.run(
        &records,
        Algorithm::PageRank { iterations: 5 },
        BaselineConfig {
            workers: 4,
            worker_ram: 256 << 10,
        },
    ) {
        Ok(_) => println!("Giraph-mem unexpectedly survived"),
        Err(e) => println!("Giraph-mem at the same memory point: {e}"),
    }
    Ok(())
}
