//! Quickstart: rank the pages of a small synthetic web graph — and run a
//! second analysis concurrently through the multi-tenant job service.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The flow mirrors Figure 9's `Client.run` path end to end, behind the
//! job-service submission API: generate a Webmap-like graph, write it to
//! the (simulated) DFS as text, submit PageRank *and* single-source
//! shortest paths to one `JobService` over a 4-machine simulated cluster,
//! wait for both, and query results straight out of the finished jobs'
//! resident vertex stores — no re-load, no output parsing.

use pregelix::graphgen;
use pregelix::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-machine cluster, 16 MB simulated RAM each.
    let cluster = Cluster::new(ClusterConfig::new(4, 16 << 20))?;

    // A power-law web graph: 2^13 = 8192 pages.
    let records = graphgen::webmap::webmap(13, 6.0, 7);
    let stats = graphgen::stats::DatasetStats::of("quickstart", &records);
    println!("input graph: {}", stats.row());

    // Stage the input in the DFS as adjacency text (the HDFS load path).
    graphgen::text::write_to_dfs(cluster.dfs(), "input/web", &records)?;

    // One service, two tenants: each job reserves pages from the shared
    // admission budget and interleaves superstep windows fairly with the
    // other — per-job results stay bit-identical to running alone.
    let service = JobService::new(&cluster, ServiceConfig::default());

    let ranks = service.submit(
        Arc::new(PageRank::new(10)),
        PregelixJob::new("quickstart-pagerank")
            .with_io("input/web", "output/ranks")
            .with_page_budget(256),
    )?;
    let paths = service.submit(
        Arc::new(ShortestPaths::new(0)),
        PregelixJob::new("quickstart-sssp")
            .with_io("input/web", "output/paths")
            .with_page_budget(256),
    )?;

    let rank_summary = ranks.wait()?;
    let path_summary = paths.wait()?;
    for summary in [&rank_summary, &path_summary] {
        println!(
            "{}: {} supersteps in {:?} ({:?}/superstep)",
            summary.name,
            summary.supersteps,
            summary.elapsed,
            summary.avg_superstep()
        );
        // `job_stats` is this job's own work — the shared-cluster delta
        // (`stats`) would also count the other tenant's supersteps.
        println!(
            "  this job: {} compute calls, {} messages sent, {} combined",
            summary.job_stats.compute_calls,
            summary.job_stats.messages_sent,
            summary.job_stats.messages_combined
        );
    }

    // Query the finished jobs in place: point + range reads through the
    // partitions' sorted-probe cursors, formatted by each program.
    assert_eq!(ranks.status(), JobStatus::Done);
    if let Some(line) = ranks.query_vertex(0)? {
        println!("page 0 rank line: {line}");
    }
    println!("pages 0..8 by shortest path from page 0:");
    for (vid, line) in paths.query_range(0, 7)? {
        println!("  page {vid}: {}", line.split_whitespace().nth(1).unwrap_or("?"));
    }

    // The dumped DFS output is still written, exactly as before: show the
    // 10 highest-ranked pages from it.
    let mut output = pregelix::core::load::read_output(cluster.dfs(), "output/ranks")?;
    output.sort_by(|(_, a), (_, b)| {
        let ra: f64 = a.split_whitespace().nth(1).unwrap().parse().unwrap();
        let rb: f64 = b.split_whitespace().nth(1).unwrap().parse().unwrap();
        rb.partial_cmp(&ra).unwrap()
    });
    println!("top pages:");
    for (vid, line) in output.iter().take(10) {
        println!("  page {vid}: {}", line.split_whitespace().nth(1).unwrap());
    }
    Ok(())
}
