//! Quickstart: rank the pages of a small synthetic web graph.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The flow mirrors Figure 9's `Client.run` path end to end: generate a
//! Webmap-like graph, write it to the (simulated) DFS as text, run
//! PageRank on a 4-machine simulated cluster with the default physical
//! plan, dump the result back to the DFS, and read the top pages.

use pregelix::graphgen;
use pregelix::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-machine cluster, 16 MB simulated RAM each.
    let cluster = Cluster::new(ClusterConfig::new(4, 16 << 20))?;

    // A power-law web graph: 2^13 = 8192 pages.
    let records = graphgen::webmap::webmap(13, 6.0, 7);
    let stats = graphgen::stats::DatasetStats::of("quickstart", &records);
    println!("input graph: {}", stats.row());

    // Stage the input in the DFS as adjacency text (the HDFS load path).
    graphgen::text::write_to_dfs(cluster.dfs(), "input/web", &records)?;

    // Describe the job: 10 PageRank iterations, default plan (index
    // full-outer join + sort-based group-by + B-tree storage).
    let job = PregelixJob::new("quickstart-pagerank").with_io("input/web", "output/ranks");
    let program = Arc::new(PageRank::new(10));

    let summary = run_job(&cluster, &program, &job)?;
    println!(
        "ran {} supersteps in {:?} ({:?}/superstep)",
        summary.supersteps,
        summary.elapsed,
        summary.avg_superstep()
    );
    println!(
        "cluster stats: {} compute calls, {} messages sent, {} combined, {:.1} MB network",
        summary.stats.compute_calls,
        summary.stats.messages_sent,
        summary.stats.messages_combined,
        summary.stats.network_bytes as f64 / (1024.0 * 1024.0)
    );

    // Read the dumped output and show the 10 highest-ranked pages.
    let mut output = pregelix::core::load::read_output(cluster.dfs(), "output/ranks")?;
    output.sort_by(|(_, a), (_, b)| {
        let ra: f64 = a.split_whitespace().nth(1).unwrap().parse().unwrap();
        let rb: f64 = b.split_whitespace().nth(1).unwrap().parse().unwrap();
        rb.partial_cmp(&ra).unwrap()
    });
    println!("top pages:");
    for (vid, line) in output.iter().take(10) {
        println!("  page {vid}: {}", line.split_whitespace().nth(1).unwrap());
    }
    Ok(())
}
