//! Checkpointing and recovery (§5.5): a worker machine "powers off" in
//! the middle of a job and the failure manager restores from the latest
//! checkpoint onto the surviving machines.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use pregelix::graphgen;
use pregelix::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let records = graphgen::btc::btc(20_000, 6.0, 31);
    println!(
        "input: {}",
        graphgen::stats::DatasetStats::of("btc-like", &records).row()
    );

    let cluster = Arc::new(Cluster::new(ClusterConfig::new(4, 16 << 20))?);
    // Checkpoint every 2 supersteps.
    let job = PregelixJob::new("cc-with-failure").with_checkpoint_interval(2);
    let program = Arc::new(ConnectedComponents);

    // Power worker 3 off a moment into the run.
    let saboteur = {
        let cluster = Arc::clone(&cluster);
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(120));
            println!(">> powering off worker 3");
            cluster.fail_worker(3);
        })
    };

    let mut graph = LoadedGraph::load_from_records(&cluster, &program, &job, records.clone())?;
    let summary = graph.run(&cluster, &program, &job)?;
    saboteur.join().expect("saboteur thread");

    println!(
        "job finished: {} supersteps, {} recovery(ies), final components computed on workers {:?}",
        summary.supersteps,
        summary.recoveries,
        cluster.alive_workers(),
    );

    // Verify the answer survived the failure.
    let got = graph.collect_vertices::<ConnectedComponents>()?;
    let adjacency: Vec<(Vid, Vec<Vid>)> = records
        .iter()
        .map(|(v, e)| (*v, e.iter().map(|(d, _)| *d).collect()))
        .collect();
    let expected =
        pregelix::algorithms::connected_components::reference_components(&adjacency);
    let mut mismatches = 0;
    for v in &got {
        if expected[&v.vid] != v.value {
            mismatches += 1;
        }
    }
    println!(
        "validated {} vertices against union-find: {} mismatches",
        got.len(),
        mismatches
    );
    assert_eq!(mismatches, 0);
    Ok(())
}
