//! The Figure 9 scenario: single source shortest paths with the paper's
//! recommended plan hints, against the default plan.
//!
//! ```text
//! cargo run --release --example sssp_plan_hints
//! ```
//!
//! SSSP is *message-sparse*: after the first few supersteps only the
//! expanding wavefront is live. Figure 9 therefore sets three hints —
//! `Join.LEFTOUTER`, `GroupBy.HASHSORT`, `Connector.UNMERGE` — which this
//! example reproduces, printing the per-superstep advantage of skipping
//! the full vertex scan (the §7.5 / Figure 14(a) effect). The input is a
//! high-diameter road-network-like grid, the regime where the wavefront
//! is a small fraction of the graph in every superstep (at the paper's
//! billion-vertex scale BTC itself behaves this way).

use pregelix::graphgen;
use pregelix::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let records = graphgen::road::grid(260, 11); // 67,600 vertices, diameter ~520
    let stats = graphgen::stats::DatasetStats::of("road-grid", &records);
    println!("input graph: {}", stats.row());
    let program = Arc::new(ShortestPaths::new(1));

    let mut results = Vec::new();
    for (label, plan) in [
        (
            "default (full outer join)",
            PlanConfig::default(),
        ),
        (
            "Figure 9 hints (left outer join + HashSort + unmerged)",
            PlanConfig {
                join: JoinStrategy::LeftOuter,
                groupby: GroupByStrategy::HashSortUnmerged,
                storage: VertexStorageKind::BTree,
            },
        ),
    ] {
        let cluster = Cluster::new(ClusterConfig::new(4, 16 << 20))?;
        // Measure the steady state: 120 supersteps of a narrow wavefront.
        let job = PregelixJob::new(format!("sssp-{}", plan.label()))
            .with_plan(plan)
            .with_max_supersteps(120);
        let (summary, graph) =
            run_job_from_records(&cluster, &program, &job, records.clone())?;
        println!(
            "{label}: {} supersteps, {:?} total, {:?}/superstep",
            summary.supersteps,
            summary.elapsed,
            summary.avg_superstep()
        );
        let reached = graph
            .collect_vertices::<ShortestPaths>()?
            .into_iter()
            .filter(|v| v.value != sssp::UNREACHED)
            .count();
        println!("  reached {reached} of {} vertices", stats.vertices);
        results.push(summary.avg_superstep());
    }
    let speedup = results[0].as_secs_f64() / results[1].as_secs_f64();
    println!("left-outer-join speedup over full scan: {speedup:.1}x (paper: up to 7x per iteration)");
    Ok(())
}
