//! The Genomix scenario (§6): De-Bruijn-style path merging with graph
//! mutations, on LSM B-tree vertex storage.
//!
//! ```text
//! cargo run --release --example genome_path_merge
//! ```
//!
//! The input imitates a cleaned De Bruijn graph: many disjoint simple
//! paths ("contigs-to-be") whose vertices carry sequence fragments. The
//! `PathMerge` program repeatedly merges each path into its head vertex
//! using `delete_vertex` mutations — the workload for which §5.2
//! recommends the LSM B-tree, since vertex values grow drastically and
//! vertices are removed in bulk. The example also demonstrates job
//! pipelining (§5.6): a connected-components pass runs over the *merged*
//! graph without re-loading it.

use pregelix::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 200 disjoint chains of length 2..40.
    let mut records: Vec<(Vid, Vec<(Vid, f64)>)> = Vec::new();
    let mut next = 0u64;
    let mut chains = 0;
    let mut rng_state = 12345u64;
    let mut rand = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };
    while chains < 200 {
        let len = 2 + rand() % 39;
        for i in 0..len {
            let vid = next + i;
            let edges = if i + 1 < len {
                vec![(vid + 1, 1.0)]
            } else {
                vec![]
            };
            records.push((vid, edges));
        }
        next += len;
        chains += 1;
    }
    println!(
        "input: {} vertices across {chains} disjoint paths",
        records.len()
    );

    let cluster = Cluster::new(ClusterConfig::new(4, 16 << 20))?;
    let job = PregelixJob::new("genome-merge")
        .with_storage(VertexStorageKind::Lsm)
        .with_max_supersteps(400);
    let program = Arc::new(PathMerge::default());
    let (summary, graph) = run_job_from_records(&cluster, &program, &job, records)?;

    let merged: Vec<VertexData<PathMerge>> = graph.collect_vertices()?;
    println!(
        "after {} supersteps: {} vertices remain (one per path), {} deleted by mutations",
        summary.supersteps,
        merged.len(),
        next - merged.len() as u64,
    );
    assert_eq!(merged.len(), chains, "every chain collapses to its head");
    assert!(summary.final_gs.halt, "job reaches the global fixpoint");
    let longest = merged
        .iter()
        .max_by_key(|v| v.value.len())
        .expect("non-empty");
    println!(
        "longest assembled sequence starts at vertex {} with {} fragments",
        longest.vid,
        longest.value.matches('[').count()
    );
    println!(
        "final vertex count tracked by GS: {}",
        summary.final_gs.vertex_count
    );
    Ok(())
}
